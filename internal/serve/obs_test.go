package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"memsched/internal/obs"
	"memsched/internal/sim"
)

// obsClock is the deterministic clock injected through Config.now.
type obsClock struct {
	mu sync.Mutex
	t  time.Time
}

func newObsClock() *obsClock {
	return &obsClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *obsClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *obsClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestFakeClockHistogramQuantiles drives a single-worker server with a
// fake clock so every queue wait, attempt runtime and sojourn is a
// known exact value, then requires the scraped /metrics exposition and
// its quantiles to match a histogram built from those expected values
// — not approximately: identically.
func TestFakeClockHistogramQuantiles(t *testing.T) {
	clock := newObsClock()
	gate := make(chan struct{})
	s := New(Config{
		Workers:  1,
		QueueCap: 64,
		now:      clock.Now,
		// Each job's "runtime" is req.N milliseconds of fake time.
		Runner: func(ctx context.Context, req JobRequest) (*sim.Result, error) {
			<-gate // hold the worker until every job is queued at t0
			clock.Advance(time.Duration(req.N) * time.Millisecond)
			return okResult(req), nil
		},
	})
	t.Cleanup(func() { s.Drain(5 * time.Second) })

	durationsMS := []int{1, 2, 3, 5, 8, 13, 40, 40, 120, 250}
	ids := make([]string, len(durationsMS))
	for i, n := range durationsMS {
		st := mustSubmit(t, s, JobRequest{Workload: "matmul2d", N: n})
		ids[i] = st.ID
	}
	close(gate)
	for _, id := range ids {
		if st := waitDone(t, s, id); st.State != JobDone {
			t.Fatalf("job %s = %+v", id, st)
		}
	}

	// Expected exact observations: all jobs are admitted at t0 and the
	// single worker runs them in order, so job k waits the sum of the
	// previous runtimes and sojourns through its own.
	var wantQueue, wantAttempt, wantSojourn obs.Histogram
	elapsed := time.Duration(0)
	for _, n := range durationsMS {
		d := time.Duration(n) * time.Millisecond
		wantQueue.Observe(elapsed)
		wantAttempt.Observe(d)
		elapsed += d
		wantSojourn.Observe(elapsed)
	}

	gotQueue, gotAttempt, gotSojourn := s.LatencySnapshots()
	for _, c := range []struct {
		name      string
		got, want obs.HistSnapshot
	}{
		{"queue_wait", gotQueue, wantQueue.Snapshot()},
		{"attempt_runtime", gotAttempt, wantAttempt.Snapshot()},
		{"sojourn", gotSojourn, wantSojourn.Snapshot()},
	} {
		if c.got != c.want {
			t.Errorf("%s snapshot = %+v, want %+v", c.name, c.got, c.want)
		}
		for _, q := range []float64{0.5, 0.95, 0.99} {
			if g, w := c.got.Quantile(q), c.want.Quantile(q); g != w {
				t.Errorf("%s Quantile(%g) = %g, want %g", c.name, q, g, w)
			}
		}
	}

	// The scraped exposition must embed the exact same histogram: render
	// the expected snapshot through the same writer and require the
	// sojourn block to appear verbatim in the page.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("content type = %q", ct)
	}
	var want bytes.Buffer
	pw := obs.NewPromWriter(&want)
	pw.Meta("memschedd_sojourn_seconds", "histogram", "End-to-end time from admission to done/failed.")
	pw.Histogram("memschedd_sojourn_seconds", nil, wantSojourn.Snapshot())
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(page, want.Bytes()) {
		t.Fatalf("exposition missing expected sojourn histogram block:\nwant:\n%s\npage:\n%s", want.String(), page)
	}
	// The per-key split carries the same totals under labels.
	if !bytes.Contains(page, []byte(`memschedd_sojourn_seconds_by_key_count{workload="matmul2d",strategy="DARTS+LUF"} 10`)) {
		t.Fatalf("per-key sojourn count missing:\n%s", page)
	}
}

// TestSubmitNoNewAllocs pins the Submit hot path: with tracing at its
// default sampling the path must allocate exactly as much as with
// tracing disabled — instrumentation rides on preallocated rings and
// atomics — and stay within a fixed absolute budget.
func TestSubmitNoNewAllocs(t *testing.T) {
	mk := func(sample int) (*Server, chan struct{}) {
		release := make(chan struct{})
		s := New(Config{
			Workers:  1,
			QueueCap: 1 << 14,
			Runner: func(ctx context.Context, req JobRequest) (*sim.Result, error) {
				select {
				case <-release:
					return okResult(req), nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			},
			TraceSample: sample,
		})
		return s, release
	}
	measure := func(s *Server) float64 {
		req := validReq()
		return testing.AllocsPerRun(200, func() {
			if _, err := s.Submit(req); err != nil {
				t.Fatalf("Submit: %v", err)
			}
		})
	}
	sOff, releaseOff := mk(-1)
	sOn, releaseOn := mk(0) // 0 applies the default: sample every job
	t.Cleanup(func() {
		close(releaseOff)
		close(releaseOn)
		sOff.Drain(10 * time.Second)
		sOn.Drain(10 * time.Second)
	})
	base := measure(sOff)
	traced := measure(sOn)
	t.Logf("Submit allocs/call: %.2f untraced, %.2f traced", base, traced)
	if traced > base {
		t.Fatalf("default tracing adds allocations to Submit: %.2f traced vs %.2f untraced", traced, base)
	}
	// Absolute guard so the whole path can't quietly bloat either. The
	// pre-observability path already costs ~33 allocations (request
	// validation dominates); the budget pins that, with a little slack
	// for amortized map growth.
	if traced > 40 {
		t.Fatalf("Submit allocates %.2f times per call, budget 40", traced)
	}
}

// TestScrapeUnderLoadAndDrain is the snapshot-then-format contract:
// /metrics (both formats) and /debug/flight keep answering while
// submissions hammer the server and a Drain runs concurrently, because
// no exporter holds the Submit mutex while rendering.
func TestScrapeUnderLoadAndDrain(t *testing.T) {
	s := New(Config{
		Workers:  2,
		QueueCap: 8,
		Runner: func(ctx context.Context, req JobRequest) (*sim.Result, error) {
			return okResult(req), nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Sustained submission load (sheds are expected and fine).
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/jobs", "application/json",
					strings.NewReader(`{"workload":"matmul2d","n":2}`))
				if err != nil {
					return // server shutting down
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}

	scrape := func(path, wantSub string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Errorf("GET %s: %v", path, err)
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), wantSub) {
			t.Errorf("GET %s missing %q", path, wantSub)
		}
	}
	deadline := time.Now().Add(400 * time.Millisecond)
	drained := make(chan struct{})
	go func() {
		time.Sleep(100 * time.Millisecond)
		s.Drain(10 * time.Second)
		close(drained)
	}()
	for time.Now().Before(deadline) {
		scrape("/metrics", "memschedd_jobs_submitted_total")
		scrape("/metrics?format=json", `"jobs_submitted"`)
		scrape("/debug/flight", `"timelines"`)
	}
	close(stop)
	wg.Wait()
	select {
	case <-drained:
	case <-time.After(15 * time.Second):
		t.Fatal("drain never finished while scraping")
	}
	// Still scrapeable after the drain.
	scrape("/metrics", "memschedd_draining 1")
}

// TestFlightRecorder walks a shed, a breaker trip and a breaker
// rejection into the event ring, then inspects /debug/flight and
// /debug/jobs/{id}/trace the way a post-incident investigation would.
func TestFlightRecorder(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{
		Workers:          1,
		QueueCap:         1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
		Runner: func(ctx context.Context, req JobRequest) (*sim.Result, error) {
			if req.Workload == "cholesky" {
				return nil, errors.New("deterministic failure")
			}
			select {
			case <-release:
				return okResult(req), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	t.Cleanup(func() { s.Drain(10 * time.Second) })

	// Fill the worker and the queue, then shed one submission.
	first := mustSubmit(t, s, JobRequest{Workload: "matmul2d", N: 2})
	waitState(t, s, first.ID, JobRunning)
	second := mustSubmit(t, s, JobRequest{Workload: "matmul2d", N: 2})
	_, err := s.Submit(JobRequest{Workload: "matmul2d", N: 2})
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Status != 429 {
		t.Fatalf("expected shed, got %v", err)
	}
	close(release)
	// Let the queued job drain so the single-slot queue is free again
	// before the breaker phase submits.
	if st := waitDone(t, s, second.ID); st.State != JobDone {
		t.Fatalf("second job = %+v", st)
	}

	// Trip the cholesky breaker (threshold 1), then bounce off it.
	bad := mustSubmit(t, s, JobRequest{Workload: "cholesky", N: 4})
	if st := waitDone(t, s, bad.ID); st.State != JobFailed {
		t.Fatalf("breaker-bait job = %+v", st)
	}
	if _, err := s.Submit(JobRequest{Workload: "cholesky", N: 4}); !errors.As(err, &rej) || rej.Status != 503 {
		t.Fatalf("expected breaker rejection, got %v", err)
	}
	if st := waitDone(t, s, first.ID); st.State != JobDone {
		t.Fatalf("first job = %+v", st)
	}

	fl := s.FlightDump(8)
	kinds := map[obs.SpanKind]int{}
	for _, e := range fl.Events {
		kinds[e.Kind]++
	}
	if kinds[obs.KindShed] != 1 || kinds[obs.KindBreakerTrip] != 1 || kinds[obs.KindBreakerReject] != 1 {
		t.Fatalf("flight events = %+v", fl.Events)
	}
	var firstLine *obs.Timeline
	for i := range fl.Timelines {
		if fl.Timelines[i].Job == first.ID {
			firstLine = &fl.Timelines[i]
		}
	}
	if firstLine == nil {
		t.Fatalf("no timeline for %s in %+v", first.ID, fl.Timelines)
	}
	wantKinds := []obs.SpanKind{obs.KindAdmit, obs.KindQueue, obs.KindAttempt, obs.KindDone}
	if len(firstLine.Spans) != len(wantKinds) {
		t.Fatalf("timeline spans = %+v", firstLine.Spans)
	}
	for i, k := range wantKinds {
		sp := firstLine.Spans[i]
		if sp.Kind != k || sp.Trace != first.Trace || sp.Job != first.ID {
			t.Fatalf("span %d = %+v, want kind %v trace %d", i, sp, k, first.Trace)
		}
	}

	// HTTP faces of the same data.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var jt JobTrace
	getJSON(t, ts.URL+"/debug/jobs/"+first.ID+"/trace", &jt)
	if jt.Status.ID != first.ID || len(jt.Spans) != len(wantKinds) {
		t.Fatalf("job trace = %+v", jt)
	}
	resp, err := http.Get(ts.URL + "/debug/jobs/job-999999/trace")
	if err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job trace: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	var fl2 Flight
	getJSON(t, ts.URL+"/debug/flight?n=2", &fl2)
	if len(fl2.Events) != 2 || len(fl2.Timelines) > 2 {
		t.Fatalf("flight?n=2 = %+v", fl2)
	}

	// The JSONL span export parses line by line.
	resp, err = http.Get(ts.URL + "/debug/spans.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	lines := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if m["kind"] == "" || m["trace"] == nil {
			t.Fatalf("span line missing fields: %v", m)
		}
		lines++
	}
	if lines < len(wantKinds) {
		t.Fatalf("only %d JSONL lines", lines)
	}
}

// TestRetryEventsRecorded puts a transient failure through the retry
// path and checks the flight recorder saw the retry and backoff.
func TestRetryEventsRecorded(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	s := New(Config{
		Workers:     1,
		MaxRetries:  2,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		Runner: func(ctx context.Context, req JobRequest) (*sim.Result, error) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if calls == 1 {
				return nil, MarkTransient(errors.New("flaky backend"))
			}
			return okResult(req), nil
		},
	})
	t.Cleanup(func() { s.Drain(10 * time.Second) })
	st := mustSubmit(t, s, validReq())
	if got := waitDone(t, s, st.ID); got.State != JobDone || got.Attempts != 2 {
		t.Fatalf("job = %+v", got)
	}
	var retry *obs.Span
	for _, e := range s.FlightDump(8).Events {
		if e.Kind == obs.KindRetry {
			e := e
			retry = &e
		}
	}
	if retry == nil || retry.Job != st.ID || retry.Attempt != 1 || !strings.Contains(retry.Note, "flaky") {
		t.Fatalf("retry event = %+v", retry)
	}
	spans := s.JobTraceDumpMust(t, st.ID)
	var kinds []obs.SpanKind
	for _, sp := range spans {
		kinds = append(kinds, sp.Kind)
	}
	want := []obs.SpanKind{obs.KindAdmit, obs.KindQueue, obs.KindAttempt, obs.KindBackoff, obs.KindAttempt, obs.KindDone}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("span kinds = %v, want %v", kinds, want)
	}
}

// JobTraceDumpMust is a test helper fetching a job's spans.
func (s *Server) JobTraceDumpMust(t *testing.T, id string) []obs.Span {
	t.Helper()
	jt, err := s.JobTraceDump(id)
	if err != nil {
		t.Fatalf("JobTraceDump(%s): %v", id, err)
	}
	return jt.Spans
}

func waitState(t *testing.T, s *Server, id string, want JobState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %s", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}
