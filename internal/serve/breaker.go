package serve

import (
	"sync"
	"time"
)

// Breaker is a per-key circuit breaker. Inside the server keys are
// (workload, strategy) pairs (JobRequest.Key): because the simulator is
// deterministic, a combination that fails permanently will keep
// failing, so after Threshold consecutive permanent failures the
// breaker opens and submissions for that key are shed immediately (503
// + Retry-After) instead of burning queue slots and worker time. The
// fleet router reuses the same machinery with replica base URLs as
// keys: a replica that keeps refusing dispatches is taken out of the
// rotation until a probe succeeds.
//
// After Cooldown the breaker goes half-open: the next submission is
// admitted as a probe. A probe success closes the breaker; a probe
// failure re-opens it for another full Cooldown.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu     sync.Mutex
	states map[string]*breakerState
	trips  int64
}

type breakerState struct {
	fails     int       // consecutive permanent failures while closed
	openUntil time.Time // zero when closed
	tripped   bool      // open or half-open
	probing   bool      // a half-open probe is in flight
}

// NewBreaker builds a breaker that opens a key after threshold
// consecutive failures and sheds it for cooldown before admitting a
// probe. A non-positive threshold disables the breaker; a nil clock
// uses time.Now.
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if now == nil {
		now = time.Now
	}
	return &Breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       now,
		states:    make(map[string]*breakerState),
	}
}

// Allow reports whether a submission for key may be admitted; when it
// may not, retryAfter is the remaining cooldown.
func (b *Breaker) Allow(key string) (ok bool, retryAfter time.Duration) {
	if b.threshold <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	if st == nil || !st.tripped {
		return true, 0
	}
	if remaining := st.openUntil.Sub(b.now()); remaining > 0 {
		return false, remaining
	}
	// Cooldown elapsed: half-open. Admit one probe at a time; further
	// submissions stay shed until the probe settles.
	if st.probing {
		return false, b.cooldown
	}
	st.probing = true
	return true, 0
}

// OnSuccess records a permanent success for key, closing its breaker.
func (b *Breaker) OnSuccess(key string) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if st := b.states[key]; st != nil {
		st.fails, st.tripped, st.probing, st.openUntil = 0, false, false, time.Time{}
	}
}

// OnFailure records a permanent failure for key, tripping the breaker
// after threshold consecutive failures (or immediately when a half-open
// probe fails). It reports whether this failure opened the breaker, so
// the caller can record a breaker-trip event.
func (b *Breaker) OnFailure(key string) (tripped bool) {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	if st == nil {
		st = &breakerState{}
		b.states[key] = st
	}
	if st.tripped {
		// Half-open probe failed (or a straggler from before the trip):
		// re-open for a full cooldown.
		st.openUntil = b.now().Add(b.cooldown)
		st.probing = false
		b.trips++
		return true
	}
	st.fails++
	if st.fails >= b.threshold {
		st.tripped = true
		st.openUntil = b.now().Add(b.cooldown)
		st.fails = 0
		b.trips++
		return true
	}
	return false
}

// TripCount returns the total number of times any key's breaker opened.
func (b *Breaker) TripCount() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// OpenKeys returns the keys whose breakers are currently open or
// half-open, for the /metrics snapshot.
func (b *Breaker) OpenKeys() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var keys []string
	for k, st := range b.states {
		if st.tripped {
			keys = append(keys, k)
		}
	}
	return keys
}
