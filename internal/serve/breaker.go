package serve

import (
	"sync"
	"time"
)

// breaker is a per-key circuit breaker. Keys are (workload, strategy)
// pairs (JobRequest.Key): because the simulator is deterministic, a
// combination that fails permanently will keep failing, so after
// Threshold consecutive permanent failures the breaker opens and
// submissions for that key are shed immediately (503 + Retry-After)
// instead of burning queue slots and worker time.
//
// After Cooldown the breaker goes half-open: the next submission is
// admitted as a probe. A probe success closes the breaker; a probe
// failure re-opens it for another full Cooldown.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu     sync.Mutex
	states map[string]*breakerState
	trips  int64
}

type breakerState struct {
	fails     int       // consecutive permanent failures while closed
	openUntil time.Time // zero when closed
	tripped   bool      // open or half-open
	probing   bool      // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       now,
		states:    make(map[string]*breakerState),
	}
}

// allow reports whether a submission for key may be admitted; when it
// may not, retryAfter is the remaining cooldown.
func (b *breaker) allow(key string) (ok bool, retryAfter time.Duration) {
	if b.threshold <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	if st == nil || !st.tripped {
		return true, 0
	}
	if remaining := st.openUntil.Sub(b.now()); remaining > 0 {
		return false, remaining
	}
	// Cooldown elapsed: half-open. Admit one probe at a time; further
	// submissions stay shed until the probe settles.
	if st.probing {
		return false, b.cooldown
	}
	st.probing = true
	return true, 0
}

// onSuccess records a permanent success for key, closing its breaker.
func (b *breaker) onSuccess(key string) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if st := b.states[key]; st != nil {
		st.fails, st.tripped, st.probing, st.openUntil = 0, false, false, time.Time{}
	}
}

// onFailure records a permanent failure for key, tripping the breaker
// after threshold consecutive failures (or immediately when a half-open
// probe fails). It reports whether this failure opened the breaker, so
// the caller can record a breaker-trip event.
func (b *breaker) onFailure(key string) (tripped bool) {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	if st == nil {
		st = &breakerState{}
		b.states[key] = st
	}
	if st.tripped {
		// Half-open probe failed (or a straggler from before the trip):
		// re-open for a full cooldown.
		st.openUntil = b.now().Add(b.cooldown)
		st.probing = false
		b.trips++
		return true
	}
	st.fails++
	if st.fails >= b.threshold {
		st.tripped = true
		st.openUntil = b.now().Add(b.cooldown)
		st.fails = 0
		b.trips++
		return true
	}
	return false
}

// tripCount returns the total number of times any key's breaker opened.
func (b *breaker) tripCount() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// openKeys returns the keys whose breakers are currently open or
// half-open, for the /metrics snapshot.
func (b *breaker) openKeys() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var keys []string
	for k, st := range b.states {
		if st.tripped {
			keys = append(keys, k)
		}
	}
	return keys
}
