package dag

import (
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

// CholeskyDAG builds the full tiled Cholesky decomposition as a dependent
// task graph: the same kernels and data as workload.Cholesky (whose
// Figure 11 experiment strips the dependencies), plus the classical
// precedence edges:
//
//	POTRF(k)    <- SYRK(k,j)  for all j < k
//	TRSM(i,k)   <- POTRF(k), GEMM(i,k,j) for all j < k
//	SYRK(i,k)   <- TRSM(i,k), SYRK(i,j)  for all j < k
//	GEMM(i,j,k) <- TRSM(i,k), TRSM(j,k), GEMM(i,j,l) for all l < k
//
// It returns the instance and its dependency graph.
func CholeskyDAG(n int) (*taskgraph.Instance, *Graph) {
	inst := workload.Cholesky(n)
	g := NewGraph(inst)

	// Recover task ids by replaying the generator's submission order.
	potrf := make([]taskgraph.TaskID, n)
	trsm := make(map[[2]int]taskgraph.TaskID)
	syrk := make(map[[2]int]taskgraph.TaskID)
	gemm := make(map[[3]int]taskgraph.TaskID)
	id := taskgraph.TaskID(0)
	for k := 0; k < n; k++ {
		potrf[k] = id
		id++
		for i := k + 1; i < n; i++ {
			trsm[[2]int{i, k}] = id
			id++
		}
		for i := k + 1; i < n; i++ {
			syrk[[2]int{i, k}] = id
			id++
			for j := k + 1; j < i; j++ {
				gemm[[3]int{i, j, k}] = id
				id++
			}
		}
	}
	if int(id) != inst.NumTasks() {
		panic("dag: Cholesky task enumeration out of sync with workload.Cholesky")
	}

	for k := 0; k < n; k++ {
		for j := 0; j < k; j++ {
			g.AddDependency(syrk[[2]int{k, j}], potrf[k])
		}
		for i := k + 1; i < n; i++ {
			g.AddDependency(potrf[k], trsm[[2]int{i, k}])
			for j := 0; j < k; j++ {
				g.AddDependency(gemm[[3]int{i, k, j}], trsm[[2]int{i, k}])
			}
		}
		for i := k + 1; i < n; i++ {
			g.AddDependency(trsm[[2]int{i, k}], syrk[[2]int{i, k}])
			for j := 0; j < k; j++ {
				g.AddDependency(syrk[[2]int{i, j}], syrk[[2]int{i, k}])
			}
			for j := k + 1; j < i; j++ {
				g.AddDependency(trsm[[2]int{i, k}], gemm[[3]int{i, j, k}])
				g.AddDependency(trsm[[2]int{j, k}], gemm[[3]int{i, j, k}])
				if k > 0 {
					g.AddDependency(gemm[[3]int{i, j, k - 1}], gemm[[3]int{i, j, k}])
				}
			}
		}
	}
	return inst, g
}
