package dag

import (
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

// Gate makes any scheduler dependency-safe. It forwards PopTask to the
// wrapped scheduler; tasks popped before their predecessors completed are
// parked in a shared stash and released — to whichever GPU asks first —
// once they become ready. This mirrors a dynamic runtime system's ready
// queue: mapping intentions may be formed early, but execution is
// released in dependency order, and a blocked task can migrate to an idle
// GPU (a form of the task stealing the paper's strategies already use).
//
// When neither the stash nor the inner scheduler yields a ready task, the
// gate keeps draining the inner scheduler into the stash until it finds
// one or the inner scheduler runs dry: with an acyclic graph some
// unexecuted task is always ready, so gated runs always make progress.
type Gate struct {
	graph *Graph
	inner sim.Scheduler
	// remainingPreds counts uncompleted predecessors per task.
	remainingPreds []int
	// stash holds popped-but-blocked tasks in pop order.
	stash []taskgraph.TaskID
}

// NewGate wraps inner with the dependency constraints of graph. Init
// panics if the graph is cyclic.
func NewGate(graph *Graph, inner sim.Scheduler) *Gate {
	return &Gate{graph: graph, inner: inner}
}

// Name returns the inner scheduler's name with a "+deps" suffix.
func (g *Gate) Name() string { return g.inner.Name() + "+deps" }

// Init validates the graph and initializes the readiness counters.
func (g *Gate) Init(inst *taskgraph.Instance, view sim.RuntimeView) {
	if err := g.graph.Validate(); err != nil {
		panic(err.Error())
	}
	if g.graph.Instance() != inst {
		panic("dag: Gate used with a different instance than its graph")
	}
	n := inst.NumTasks()
	g.remainingPreds = make([]int, n)
	for t := 0; t < n; t++ {
		g.remainingPreds[t] = len(g.graph.Predecessors(taskgraph.TaskID(t)))
	}
	g.inner.Init(inst, view)
}

func (g *Gate) ready(t taskgraph.TaskID) bool { return g.remainingPreds[t] == 0 }

// popStash returns the first ready stashed task, if any.
func (g *Gate) popStash() (taskgraph.TaskID, bool) {
	for i, t := range g.stash {
		if g.ready(t) {
			g.stash = append(g.stash[:i], g.stash[i+1:]...)
			return t, true
		}
	}
	return taskgraph.NoTask, false
}

// PopTask returns a ready task for gpu: first from the stash, then by
// draining the inner scheduler (stashing unready tasks) until a ready one
// appears or the inner scheduler has nothing left.
func (g *Gate) PopTask(gpu int) (taskgraph.TaskID, bool) {
	if t, ok := g.popStash(); ok {
		return t, true
	}
	for {
		t, ok := g.inner.PopTask(gpu)
		if !ok {
			return taskgraph.NoTask, false
		}
		if g.ready(t) {
			return t, true
		}
		g.stash = append(g.stash, t)
	}
}

// TaskDone releases the successors of t and forwards the notification.
func (g *Gate) TaskDone(gpu int, t taskgraph.TaskID) {
	for _, s := range g.graph.Successors(t) {
		g.remainingPreds[s]--
	}
	g.inner.TaskDone(gpu, t)
}

// DataLoaded forwards to the inner scheduler.
func (g *Gate) DataLoaded(gpu int, d taskgraph.DataID) { g.inner.DataLoaded(gpu, d) }

// DataEvicted forwards to the inner scheduler.
func (g *Gate) DataEvicted(gpu int, d taskgraph.DataID) { g.inner.DataEvicted(gpu, d) }

var _ sim.Scheduler = (*Gate)(nil)
