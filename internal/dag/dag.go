// Package dag adds inter-task dependencies on top of the independent-task
// model, the first item of the paper's future work ("In the long run, our
// objective is to consider tasks with dependencies", §VI).
//
// A Graph attaches precedence edges to the tasks of a taskgraph.Instance.
// The Gate wrapper makes any of the repository's schedulers
// dependency-safe: tasks are handed to the runtime only once all their
// predecessors completed, which models how a dynamic runtime system
// exposes the scheduler to the currently-ready subset of the DAG (the
// situation §I of the paper builds on).
//
// As in the paper, data versioning is not modeled: dependencies constrain
// execution order only, and data items remain read-only inputs.
package dag

import (
	"fmt"

	"memsched/internal/taskgraph"
)

// Graph is a set of precedence edges over the tasks of an instance.
type Graph struct {
	inst  *taskgraph.Instance
	preds [][]taskgraph.TaskID
	succs [][]taskgraph.TaskID
	edges int
}

// NewGraph returns an empty dependency graph over inst.
func NewGraph(inst *taskgraph.Instance) *Graph {
	return &Graph{
		inst:  inst,
		preds: make([][]taskgraph.TaskID, inst.NumTasks()),
		succs: make([][]taskgraph.TaskID, inst.NumTasks()),
	}
}

// Instance returns the underlying instance.
func (g *Graph) Instance() *taskgraph.Instance { return g.inst }

// AddDependency records that after must not start before before
// completes. Duplicate edges are ignored; self-edges panic.
func (g *Graph) AddDependency(before, after taskgraph.TaskID) {
	if before == after {
		panic(fmt.Sprintf("dag: self dependency on task %d", before))
	}
	if before < 0 || int(before) >= g.inst.NumTasks() || after < 0 || int(after) >= g.inst.NumTasks() {
		panic(fmt.Sprintf("dag: dependency %d -> %d out of range", before, after))
	}
	for _, p := range g.preds[after] {
		if p == before {
			return
		}
	}
	g.preds[after] = append(g.preds[after], before)
	g.succs[before] = append(g.succs[before], after)
	g.edges++
}

// NumEdges returns the number of distinct dependency edges.
func (g *Graph) NumEdges() int { return g.edges }

// Predecessors returns the tasks that must complete before t starts.
// Callers must not mutate the returned slice.
func (g *Graph) Predecessors(t taskgraph.TaskID) []taskgraph.TaskID { return g.preds[t] }

// Successors returns the tasks waiting on t. Callers must not mutate the
// returned slice.
func (g *Graph) Successors(t taskgraph.TaskID) []taskgraph.TaskID { return g.succs[t] }

// Validate reports an error if the graph has a cycle.
func (g *Graph) Validate() error {
	if _, err := g.topoOrder(); err != nil {
		return err
	}
	return nil
}

func (g *Graph) topoOrder() ([]taskgraph.TaskID, error) {
	n := g.inst.NumTasks()
	indeg := make([]int, n)
	for t := 0; t < n; t++ {
		indeg[t] = len(g.preds[t])
	}
	queue := make([]taskgraph.TaskID, 0, n)
	for t := 0; t < n; t++ {
		if indeg[t] == 0 {
			queue = append(queue, taskgraph.TaskID(t))
		}
	}
	order := make([]taskgraph.TaskID, 0, n)
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		order = append(order, t)
		for _, s := range g.succs[t] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("dag: cycle involving %d tasks", n-len(order))
	}
	return order, nil
}

// Levels returns for every task its depth in the DAG (sources are level
// 0), and the number of levels. Tasks of one level are mutually
// independent: the "fairly large subset of independent tasks" the paper's
// schedulers operate on.
func (g *Graph) Levels() ([]int, int, error) {
	order, err := g.topoOrder()
	if err != nil {
		return nil, 0, err
	}
	level := make([]int, g.inst.NumTasks())
	maxL := 0
	for _, t := range order {
		for _, p := range g.preds[t] {
			if level[p]+1 > level[t] {
				level[t] = level[p] + 1
			}
		}
		if level[t] > maxL {
			maxL = level[t]
		}
	}
	return level, maxL + 1, nil
}

// CriticalPathFlops returns the maximum total flops along any dependency
// chain: a lower bound on the work any schedule must serialize.
func (g *Graph) CriticalPathFlops() (float64, error) {
	order, err := g.topoOrder()
	if err != nil {
		return 0, err
	}
	best := make([]float64, g.inst.NumTasks())
	var cp float64
	for _, t := range order {
		b := 0.0
		for _, p := range g.preds[t] {
			if best[p] > b {
				b = best[p]
			}
		}
		best[t] = b + g.inst.Task(t).Flops
		if best[t] > cp {
			cp = best[t]
		}
	}
	return cp, nil
}
