package dag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"memsched/internal/memory"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

func lineInstance(n int) *taskgraph.Instance {
	b := taskgraph.NewBuilder("line")
	d := b.AddData("d", 10*platform.MB)
	for i := 0; i < n; i++ {
		b.AddTask("t", workload.Flops3D, d)
	}
	return b.Build()
}

func TestGraphBasics(t *testing.T) {
	inst := lineInstance(4)
	g := NewGraph(inst)
	g.AddDependency(0, 1)
	g.AddDependency(1, 2)
	g.AddDependency(0, 2)
	g.AddDependency(0, 2) // duplicate ignored
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.Predecessors(2); len(got) != 2 {
		t.Fatalf("preds(2) = %v", got)
	}
	if got := g.Successors(0); len(got) != 2 {
		t.Fatalf("succs(0) = %v", got)
	}
	levels, num, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if num != 3 || levels[0] != 0 || levels[1] != 1 || levels[2] != 2 || levels[3] != 0 {
		t.Fatalf("levels = %v (%d)", levels, num)
	}
	cp, err := g.CriticalPathFlops()
	if err != nil {
		t.Fatal(err)
	}
	if cp != 3*workload.Flops3D {
		t.Fatalf("critical path = %g", cp)
	}
}

func TestGraphDetectsCycle(t *testing.T) {
	g := NewGraph(lineInstance(3))
	g.AddDependency(0, 1)
	g.AddDependency(1, 2)
	g.AddDependency(2, 0)
	if g.Validate() == nil {
		t.Fatal("cycle not detected")
	}
}

func TestGraphPanics(t *testing.T) {
	g := NewGraph(lineInstance(2))
	for name, f := range map[string]func(){
		"self":  func() { g.AddDependency(1, 1) },
		"range": func() { g.AddDependency(0, 5) },
	} {
		name, f := name, f
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		})
	}
}

// runGated executes inst under strat wrapped in a dependency gate and
// verifies from the trace that no task started before its predecessors
// finished.
func runGated(t *testing.T, inst *taskgraph.Instance, g *Graph, strat sched.Strategy, gpus int) *sim.Result {
	t.Helper()
	inner, pol := strat.New()
	var ev sim.EvictionPolicy = pol
	if ev == nil {
		ev = memory.NewLRU()
	}
	res, err := sim.Run(inst, sim.Config{
		Platform:        platform.V100(gpus),
		Scheduler:       NewGate(g, inner),
		Eviction:        ev,
		Seed:            1,
		RecordTrace:     true,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatalf("%s: %v", strat.Label, err)
	}
	// Dependency order check.
	started := make(map[taskgraph.TaskID]bool)
	done := make(map[taskgraph.TaskID]bool)
	for _, evt := range res.Trace {
		switch evt.Kind {
		case sim.TraceStart:
			for _, p := range g.Predecessors(evt.Task) {
				if !done[p] {
					t.Fatalf("%s: task %d started before predecessor %d finished", strat.Label, evt.Task, p)
				}
			}
			started[evt.Task] = true
		case sim.TraceEnd:
			done[evt.Task] = true
		}
	}
	if len(done) != inst.NumTasks() {
		t.Fatalf("%s: %d of %d tasks completed", strat.Label, len(done), inst.NumTasks())
	}
	return res
}

func TestGateRespectsDependenciesAllStrategies(t *testing.T) {
	inst, g := CholeskyDAG(8)
	for _, strat := range []sched.Strategy{
		sched.EagerStrategy(),
		sched.DMDARStrategy(),
		sched.HMetisRStrategy(false),
		sched.MHFPStrategy(false),
		sched.DARTSStrategy(sched.DARTSOptions{}),
		sched.DARTSStrategy(sched.DARTSOptions{LUF: true}),
		sched.DARTSStrategy(sched.DARTSOptions{LUF: true, Opti: true, ThreeInputs: true}),
	} {
		for _, gpus := range []int{1, 2, 4} {
			runGated(t, inst, g, strat, gpus)
		}
	}
}

func TestGateRandomDAGsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		inst := workload.Random(n, 5+rng.Intn(6), 2, seed)
		g := NewGraph(inst)
		// Random forward edges only: guaranteed acyclic.
		for i := 0; i < 2*n; i++ {
			a := rng.Intn(n - 1)
			b := a + 1 + rng.Intn(n-a-1)
			g.AddDependency(taskgraph.TaskID(a), taskgraph.TaskID(b))
		}
		s, lufPol := sched.NewDARTSPair(sched.DARTSOptions{LUF: true})()
		res, err := sim.Run(inst, sim.Config{
			Platform:        platform.V100(2),
			Scheduler:       NewGate(g, s),
			Eviction:        lufPol,
			Seed:            seed,
			RecordTrace:     true,
			CheckInvariants: true,
		})
		if err != nil {
			return false
		}
		done := make(map[taskgraph.TaskID]bool)
		for _, evt := range res.Trace {
			switch evt.Kind {
			case sim.TraceStart:
				for _, p := range g.Predecessors(evt.Task) {
					if !done[p] {
						return false
					}
				}
			case sim.TraceEnd:
				done[evt.Task] = true
			}
		}
		return len(done) == inst.NumTasks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyDAGShape(t *testing.T) {
	n := 6
	inst, g := CholeskyDAG(n)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Instance() != inst {
		t.Fatal("graph detached from instance")
	}
	// The critical path of tiled Cholesky has 3(n-1)+1 kernels:
	// POTRF(0), TRSM(1,0), SYRK(1,0)|GEMM..., POTRF(1), ...
	_, levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if levels != 3*(n-1)+1 {
		t.Fatalf("levels = %d, want %d", levels, 3*(n-1)+1)
	}
	cp, err := g.CriticalPathFlops()
	if err != nil {
		t.Fatal(err)
	}
	if cp <= 0 || cp >= inst.TotalFlops() {
		t.Fatalf("critical path %g vs total %g", cp, inst.TotalFlops())
	}
	// Sources: only POTRF(0)... plus tasks with no predecessors like
	// TRSM(i,0)? TRSM(i,0) depends on POTRF(0). GEMM(i,j,0) depends on
	// TRSM. So exactly one source.
	sources := 0
	for t2 := 0; t2 < inst.NumTasks(); t2++ {
		if len(g.Predecessors(taskgraph.TaskID(t2))) == 0 {
			sources++
		}
	}
	if sources != 1 {
		t.Fatalf("sources = %d, want 1 (POTRF(0))", sources)
	}
}

// TestDependenciesCostThroughput: the gated Cholesky cannot beat the
// dependency-free task set of the paper (same kernels, fewer
// constraints), and both must complete.
func TestDependenciesCostThroughput(t *testing.T) {
	inst, g := CholeskyDAG(12)
	gated := runGated(t, inst, g, sched.DARTSStrategy(sched.DARTSOptions{LUF: true}), 4)

	inner, pol := sched.DARTSStrategy(sched.DARTSOptions{LUF: true}).New()
	var ev sim.EvictionPolicy = pol
	if ev == nil {
		ev = memory.NewLRU()
	}
	free, err := sim.Run(inst, sim.Config{
		Platform:  platform.V100(4),
		Scheduler: inner,
		Eviction:  ev,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if gated.Makespan < free.Makespan {
		t.Fatalf("dependencies made the run faster: %v vs %v", gated.Makespan, free.Makespan)
	}
}
