package memory

import (
	"testing"

	"memsched/internal/platform"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

// fakeView provides the minimal RuntimeView surface the policies need.
type fakeView struct {
	sim.RuntimeView
	gpus int
}

func (v fakeView) Platform() platform.Platform {
	return platform.Platform{NumGPUs: v.gpus, MemoryBytes: 1, GFlopsPerGPU: 1, BusBytesPerSecond: 1}
}

func newInst(nData int) *taskgraph.Instance {
	b := taskgraph.NewBuilder("mem")
	ids := make([]taskgraph.DataID, nData)
	for i := range ids {
		ids[i] = b.AddData("d", 10)
	}
	b.AddTask("t", 1, ids...)
	return b.Build()
}

func TestLRUOrdering(t *testing.T) {
	p := NewLRU()
	p.Init(newInst(4), fakeView{gpus: 2})
	if p.Name() != "LRU" {
		t.Errorf("name = %q", p.Name())
	}
	p.Loaded(0, 0)
	p.Loaded(0, 1)
	p.Loaded(0, 2)
	p.Used(0, 0) // 0 becomes most recent; oldest is now 1
	if v := p.Victim(0, []taskgraph.DataID{0, 1, 2}); v != 1 {
		t.Fatalf("victim = %d, want 1", v)
	}
	// Candidates restrict the choice.
	if v := p.Victim(0, []taskgraph.DataID{0, 2}); v != 2 {
		t.Fatalf("victim = %d, want 2", v)
	}
	// Eviction resets recency: once evicted and reloaded, 1 is fresh.
	p.Evicted(0, 1)
	p.Loaded(0, 1)
	if v := p.Victim(0, []taskgraph.DataID{1, 2}); v != 2 {
		t.Fatalf("victim = %d, want 2", v)
	}
	// GPUs are independent.
	p.Loaded(1, 3)
	if v := p.Victim(1, []taskgraph.DataID{3}); v != 3 {
		t.Fatalf("victim on gpu1 = %d", v)
	}
}

func TestFIFOOrdering(t *testing.T) {
	p := NewFIFO()
	p.Init(newInst(3), fakeView{gpus: 1})
	if p.Name() != "FIFO" {
		t.Errorf("name = %q", p.Name())
	}
	p.Loaded(0, 2)
	p.Loaded(0, 0)
	p.Loaded(0, 1)
	p.Used(0, 2) // FIFO ignores uses
	if v := p.Victim(0, []taskgraph.DataID{0, 1, 2}); v != 2 {
		t.Fatalf("victim = %d, want 2 (first loaded)", v)
	}
}

// TestPoliciesNeverEvictOutsideCandidates runs full simulations and
// relies on the engine's victim validation to panic if a policy ever
// returns a non-candidate.
func TestPoliciesNeverEvictOutsideCandidates(t *testing.T) {
	inst := workload.Matmul2D(40)
	for _, pol := range []sim.EvictionPolicy{NewLRU(), NewFIFO()} {
		res, err := sim.Run(inst, sim.Config{
			Platform:        platform.V100(1),
			Scheduler:       &orderSched{},
			Eviction:        pol,
			CheckInvariants: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if res.Evictions == 0 {
			t.Fatalf("%s: expected evictions", pol.Name())
		}
	}
}

// orderSched is a trivial shared-queue scheduler for policy tests: it
// serves all tasks in submission order to whichever GPU asks.
type orderSched struct {
	next int
	m    int
}

func (*orderSched) Name() string { return "order" }
func (s *orderSched) Init(inst *taskgraph.Instance, view sim.RuntimeView) {
	s.m = inst.NumTasks()
}
func (s *orderSched) PopTask(gpu int) (taskgraph.TaskID, bool) {
	if s.next >= s.m {
		return taskgraph.NoTask, false
	}
	t := taskgraph.TaskID(s.next)
	s.next++
	return t, true
}
func (*orderSched) TaskDone(int, taskgraph.TaskID)    {}
func (*orderSched) DataLoaded(int, taskgraph.DataID)  {}
func (*orderSched) DataEvicted(int, taskgraph.DataID) {}
