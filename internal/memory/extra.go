package memory

import (
	"math/rand"

	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

// MRU evicts the most recently used data item. On cyclic access patterns
// larger than memory (exactly the EAGER 2D-product pathology) MRU is the
// classical antidote to LRU thrashing; it is provided as an ablation
// comparator.
type MRU struct {
	clock int64
	last  [][]int64
}

// NewMRU returns a fresh MRU policy.
func NewMRU() *MRU { return &MRU{} }

// Name returns "MRU".
func (p *MRU) Name() string { return "MRU" }

// Init sizes the per-GPU recency tables.
func (p *MRU) Init(inst *taskgraph.Instance, view sim.RuntimeView) {
	p.clock = 0
	p.last = make([][]int64, view.Platform().NumGPUs)
	for k := range p.last {
		p.last[k] = make([]int64, inst.NumData())
	}
}

func (p *MRU) touch(gpu int, d taskgraph.DataID) {
	p.clock++
	p.last[gpu][d] = p.clock
}

// Loaded marks d as just used on gpu.
func (p *MRU) Loaded(gpu int, d taskgraph.DataID) { p.touch(gpu, d) }

// Used marks d as just used on gpu.
func (p *MRU) Used(gpu int, d taskgraph.DataID) { p.touch(gpu, d) }

// Victim returns the most recently used candidate.
func (p *MRU) Victim(gpu int, candidates []taskgraph.DataID) taskgraph.DataID {
	best := candidates[0]
	bestT := p.last[gpu][best]
	for _, d := range candidates[1:] {
		if t := p.last[gpu][d]; t > bestT {
			best, bestT = d, t
		}
	}
	return best
}

// Evicted forgets the recency of d on gpu.
func (p *MRU) Evicted(gpu int, d taskgraph.DataID) { p.last[gpu][d] = 0 }

// Random evicts a uniformly random candidate. It is the no-information
// baseline of the eviction ablation.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a Random policy seeded deterministically.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name returns "Random".
func (p *Random) Name() string { return "Random" }

// Init is a no-op.
func (p *Random) Init(inst *taskgraph.Instance, view sim.RuntimeView) {}

// Loaded is a no-op.
func (p *Random) Loaded(gpu int, d taskgraph.DataID) {}

// Used is a no-op.
func (p *Random) Used(gpu int, d taskgraph.DataID) {}

// Victim returns a random candidate.
func (p *Random) Victim(gpu int, candidates []taskgraph.DataID) taskgraph.DataID {
	return candidates[p.rng.Intn(len(candidates))]
}

// Evicted is a no-op.
func (p *Random) Evicted(gpu int, d taskgraph.DataID) {}

var (
	_ sim.EvictionPolicy = (*MRU)(nil)
	_ sim.EvictionPolicy = (*Random)(nil)
)
