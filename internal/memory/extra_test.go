package memory

import (
	"testing"

	"memsched/internal/platform"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

func TestMRUOrdering(t *testing.T) {
	p := NewMRU()
	p.Init(newInst(3), fakeView{gpus: 1})
	p.Loaded(0, 0)
	p.Loaded(0, 1)
	p.Used(0, 0) // 0 is now the most recent
	if v := p.Victim(0, []taskgraph.DataID{0, 1}); v != 0 {
		t.Fatalf("victim = %d, want 0 (most recent)", v)
	}
	p.Evicted(0, 0)
	p.Loaded(0, 2)
	if v := p.Victim(0, []taskgraph.DataID{1, 2}); v != 2 {
		t.Fatalf("victim = %d, want 2", v)
	}
}

func TestRandomWithinCandidates(t *testing.T) {
	p := NewRandom(7)
	p.Init(newInst(4), fakeView{gpus: 1})
	cands := []taskgraph.DataID{1, 3}
	seen := map[taskgraph.DataID]bool{}
	for i := 0; i < 50; i++ {
		v := p.Victim(0, cands)
		if v != 1 && v != 3 {
			t.Fatalf("victim %d outside candidates", v)
		}
		seen[v] = true
	}
	if len(seen) != 2 {
		t.Fatal("random policy never varied")
	}
}

// TestMRUBeatsLRUOnCyclicScan reproduces the textbook result on the
// paper's pathological pattern: EAGER's row-major order cyclically scans
// the B columns, where MRU retains most of the cycle and LRU retains
// none of it.
func TestMRUBeatsLRUOnCyclicScan(t *testing.T) {
	inst := workload.Matmul2D(45) // B alone (664 MB) exceeds 500 MB
	run := func(pol sim.EvictionPolicy) *sim.Result {
		res, err := sim.Run(inst, sim.Config{
			Platform:        platform.V100(1),
			Scheduler:       &orderSched{},
			Eviction:        pol,
			CheckInvariants: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lru := run(NewLRU())
	mru := run(NewMRU())
	if mru.BytesTransferred >= lru.BytesTransferred {
		t.Fatalf("MRU moved %d B >= LRU %d B on a cyclic scan", mru.BytesTransferred, lru.BytesTransferred)
	}
}
