// Package memory provides the generic eviction policies used by the
// paper's schedulers: LRU (the StarPU default used by every strategy
// except DARTS+LUF) and helpers shared with the offline Belady evaluator
// of internal/core. The DARTS-specific LUF policy lives with its scheduler
// in internal/sched because it reads the scheduler's plannedTasks state.
package memory

import (
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

// LRU evicts the least recently used data item. "Use" is either becoming
// resident or being read by a starting task. This is the paper's baseline
// eviction policy ("All the schedulers use the LRU's eviction policy
// except for DARTS+LUF", §V-A).
type LRU struct {
	clock int64
	last  [][]int64 // per GPU, indexed by DataID; 0 = never used
}

// NewLRU returns a fresh LRU policy.
func NewLRU() *LRU { return &LRU{} }

// Name returns "LRU".
func (p *LRU) Name() string { return "LRU" }

// Init sizes the per-GPU recency tables.
func (p *LRU) Init(inst *taskgraph.Instance, view sim.RuntimeView) {
	p.clock = 0
	p.last = make([][]int64, view.Platform().NumGPUs)
	for k := range p.last {
		p.last[k] = make([]int64, inst.NumData())
	}
}

func (p *LRU) touch(gpu int, d taskgraph.DataID) {
	p.clock++
	p.last[gpu][d] = p.clock
}

// Loaded marks d as just used on gpu.
func (p *LRU) Loaded(gpu int, d taskgraph.DataID) { p.touch(gpu, d) }

// Used marks d as just used on gpu.
func (p *LRU) Used(gpu int, d taskgraph.DataID) { p.touch(gpu, d) }

// Victim returns the least recently used candidate.
func (p *LRU) Victim(gpu int, candidates []taskgraph.DataID) taskgraph.DataID {
	best := candidates[0]
	bestT := p.last[gpu][best]
	for _, d := range candidates[1:] {
		if t := p.last[gpu][d]; t < bestT {
			best, bestT = d, t
		}
	}
	return best
}

// Evicted forgets the recency of d on gpu.
func (p *LRU) Evicted(gpu int, d taskgraph.DataID) { p.last[gpu][d] = 0 }

// FIFO evicts the data item loaded the longest ago, ignoring uses. It is
// provided for the eviction-policy ablation bench.
type FIFO struct {
	clock int64
	born  [][]int64 // per GPU, indexed by DataID; 0 = never loaded
}

// NewFIFO returns a fresh FIFO policy.
func NewFIFO() *FIFO { return &FIFO{} }

// Name returns "FIFO".
func (p *FIFO) Name() string { return "FIFO" }

// Init sizes the per-GPU tables.
func (p *FIFO) Init(inst *taskgraph.Instance, view sim.RuntimeView) {
	p.clock = 0
	p.born = make([][]int64, view.Platform().NumGPUs)
	for k := range p.born {
		p.born[k] = make([]int64, inst.NumData())
	}
}

// Loaded records the load time of d on gpu.
func (p *FIFO) Loaded(gpu int, d taskgraph.DataID) {
	p.clock++
	p.born[gpu][d] = p.clock
}

// Used is a no-op for FIFO.
func (p *FIFO) Used(gpu int, d taskgraph.DataID) {}

// Victim returns the earliest loaded candidate.
func (p *FIFO) Victim(gpu int, candidates []taskgraph.DataID) taskgraph.DataID {
	best := candidates[0]
	bestT := p.born[gpu][best]
	for _, d := range candidates[1:] {
		if t := p.born[gpu][d]; t < bestT {
			best, bestT = d, t
		}
	}
	return best
}

// Evicted forgets d on gpu.
func (p *FIFO) Evicted(gpu int, d taskgraph.DataID) { p.born[gpu][d] = 0 }

var (
	_ sim.EvictionPolicy = (*LRU)(nil)
	_ sim.EvictionPolicy = (*FIFO)(nil)
)
