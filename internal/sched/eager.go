package sched

import (
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

// Eager is the paper's baseline scheduler: GPUs pick up tasks on demand
// from a single shared queue holding the tasks in submission order
// ("the natural order, i.e. row major for matrix multiplications", §V-A).
type Eager struct {
	base
	queue []taskgraph.TaskID
	next  int
}

// NewEager returns a Factory for the EAGER baseline.
func NewEager() Factory {
	return func() sim.Scheduler { return &Eager{} }
}

// Name returns "EAGER".
func (s *Eager) Name() string { return "EAGER" }

// Init loads the shared queue with all tasks in submission order.
func (s *Eager) Init(inst *taskgraph.Instance, view sim.RuntimeView) {
	s.queue = make([]taskgraph.TaskID, inst.NumTasks())
	for i := range s.queue {
		s.queue[i] = taskgraph.TaskID(i)
	}
	s.next = 0
}

// PopTask hands the next queued task to whichever GPU asks first.
func (s *Eager) PopTask(gpu int) (taskgraph.TaskID, bool) {
	if s.next >= len(s.queue) {
		return taskgraph.NoTask, false
	}
	t := s.queue[s.next]
	s.next++
	return t, true
}

// GPUDropped puts the dead GPU's unfinished tasks back at the front of
// the shared queue; survivors pick them up on demand like any other task.
func (s *Eager) GPUDropped(gpu int, requeue []taskgraph.TaskID) {
	rest := s.queue[s.next:]
	q := make([]taskgraph.TaskID, 0, len(requeue)+len(rest))
	q = append(q, requeue...)
	q = append(q, rest...)
	s.queue = q
	s.next = 0
}
