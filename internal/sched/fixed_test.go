package sched_test

import (
	"testing"

	"memsched/internal/core"
	"memsched/internal/memory"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

func TestFixedReplaysSchedule(t *testing.T) {
	inst := workload.Matmul2D(6)
	// Column-major on GPU 0, remainder on GPU 1.
	s := &core.Schedule{Order: make([][]taskgraph.TaskID, 2)}
	for j := 0; j < 6; j++ {
		for i := 0; i < 3; i++ {
			s.Order[0] = append(s.Order[0], taskgraph.TaskID(i*6+j))
		}
		for i := 3; i < 6; i++ {
			s.Order[1] = append(s.Order[1], taskgraph.TaskID(i*6+j))
		}
	}
	res, err := sim.Run(inst, sim.Config{
		Platform:        platform.V100(2),
		Scheduler:       sched.NewFixed(s)(),
		Eviction:        memory.NewLRU(),
		RecordTrace:     true,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GPU[0].Tasks != 18 || res.GPU[1].Tasks != 18 {
		t.Fatalf("task split %d/%d", res.GPU[0].Tasks, res.GPU[1].Tasks)
	}
	// Per-GPU start order must equal the given queues (in-order
	// execution holds when tasks become ready in order).
	var got [2][]taskgraph.TaskID
	for _, ev := range res.Trace {
		if ev.Kind == sim.TraceStart {
			got[ev.GPU] = append(got[ev.GPU], ev.Task)
		}
	}
	for k := 0; k < 2; k++ {
		seen := map[taskgraph.TaskID]bool{}
		for _, task := range got[k] {
			seen[task] = true
		}
		for _, task := range s.Order[k] {
			if !seen[task] {
				t.Fatalf("gpu %d did not run task %d", k, task)
			}
		}
	}
}

// TestFixedReplaysBruteForceOptimum closes the loop: the brute-force
// optimal schedule of a tiny instance, replayed in the simulator with
// FIFO eviction and a window of 1, must not load much more than the
// offline optimum predicts.
func TestFixedReplaysBruteForceOptimum(t *testing.T) {
	b := taskgraph.NewBuilder("tiny")
	const unit = 100
	d := make([]taskgraph.DataID, 4)
	for i := range d {
		d[i] = b.AddData("d", unit)
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddTask("t", 1e9, d[i], d[j])
		}
	}
	inst := b.Build() // 6 tasks over 4 data
	const mem = 4 * unit

	best, err := core.BruteForce(inst, 1, mem, inst.NumTasks())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(inst, sim.Config{
		Platform: platform.Platform{
			NumGPUs: 1, MemoryBytes: mem, GFlopsPerGPU: 1, BusBytesPerSecond: 1000,
		},
		Scheduler:       sched.NewFixed(best.Schedule)(),
		Eviction:        memory.NewFIFO(),
		WindowSize:      1,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The online run may pay a little for prefetch-window eviction
	// mismatch, but must stay within 150% of the offline optimum.
	if res.Loads > best.Loads*3/2 {
		t.Fatalf("replay loaded %d, offline optimum %d", res.Loads, best.Loads)
	}
}

func TestFixedValidation(t *testing.T) {
	inst := workload.Matmul2D(3)
	s := &core.Schedule{Order: [][]taskgraph.TaskID{{0, 1}}} // incomplete
	defer func() {
		if recover() == nil {
			t.Fatal("incomplete schedule accepted")
		}
	}()
	_, _ = sim.Run(inst, sim.Config{
		Platform:  platform.V100(1),
		Scheduler: sched.NewFixed(s)(),
		Eviction:  memory.NewLRU(),
	})
}

// TestLoadsPerDataShowsEagerPathology quantifies §V-B: under EAGER at
// n=40 on one GPU, the B columns are reloaded for almost every block-row
// of A once memory is constrained, while the A rows load once each.
func TestLoadsPerDataShowsEagerPathology(t *testing.T) {
	n := 40
	inst := workload.Matmul2D(n)
	res, err := sim.Run(inst, sim.Config{
		Platform:  platform.V100(1),
		Scheduler: sched.NewEager()(),
		Eviction:  memory.NewLRU(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var aLoads, bLoads int
	for d := 0; d < n; d++ {
		aLoads += res.LoadsPerData[d] // A rows are data 0..n-1
		bLoads += res.LoadsPerData[n+d]
	}
	if aLoads > n+n/4 {
		t.Fatalf("A rows loaded %d times, want ~%d", aLoads, n)
	}
	if bLoads < 5*n {
		t.Fatalf("B columns loaded %d times, expected massive reloading", bLoads)
	}
}
