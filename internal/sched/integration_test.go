package sched_test

import (
	"testing"

	"memsched/internal/memory"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

// runStrat executes one strategy with explicit knobs.
func runStrat(t *testing.T, build func() (sim.Scheduler, sim.EvictionPolicy), inst *taskgraph.Instance, gpus int, nsPerOp float64) *sim.Result {
	t.Helper()
	s, pol := build()
	var ev sim.EvictionPolicy = pol
	if ev == nil {
		ev = memory.NewLRU()
	}
	res, err := sim.Run(inst, sim.Config{
		Platform:        platform.V100(gpus),
		Scheduler:       s,
		Eviction:        ev,
		Seed:            1,
		NsPerOp:         nsPerOp,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestStealingImprovesImbalance builds an instance whose hypergraph
// partition is inherently imbalanced in runtime (a few giant-flop tasks
// clustered on shared data): with stealing, no GPU may sit idle while
// others hold a long queue tail.
func TestStealingImprovesImbalance(t *testing.T) {
	// One heavy cluster sharing data d0 and a light scattered remainder:
	// the balanced-by-count partition is imbalanced by flops.
	b := taskgraph.NewBuilder("imbalanced")
	d0 := b.AddData("hot", 50*platform.MB)
	for i := 0; i < 40; i++ {
		b.AddTask("heavy", 20*workload.Flops3D, d0, b.AddData("h", 10*platform.MB))
	}
	for i := 0; i < 40; i++ {
		b.AddTask("light", workload.Flops3D/4, b.AddData("l", 10*platform.MB))
	}
	inst := b.Build()

	steal := runStrat(t, func() (sim.Scheduler, sim.EvictionPolicy) {
		return sched.NewHMetisRSteal(false, 0, true)(), nil
	}, inst, 4, 0)
	nosteal := runStrat(t, func() (sim.Scheduler, sim.EvictionPolicy) {
		return sched.NewHMetisRSteal(false, 0, false)(), nil
	}, inst, 4, 0)
	if steal.Makespan > nosteal.Makespan {
		t.Fatalf("stealing slowed things down: %v vs %v", steal.Makespan, nosteal.Makespan)
	}
	if steal.Makespan == nosteal.Makespan {
		t.Logf("stealing made no difference on this instance (both %v)", steal.Makespan)
	}
}

// TestThresholdCutsChargedOps verifies the paper's Figure 8 trade-off at
// the counter level: the threshold variant charges far fewer scheduler
// operations than unbounded DARTS while still finishing the instance.
func TestThresholdCutsChargedOps(t *testing.T) {
	inst := workload.Matmul2D(40)
	full := runStrat(t, sched.NewDARTSPair(sched.DARTSOptions{LUF: true}), inst, 4, sim.DefaultNsPerOp)
	thr := runStrat(t, sched.NewDARTSPair(sched.DARTSOptions{LUF: true, Threshold: 5}), inst, 4, sim.DefaultNsPerOp)
	if thr.ChargedOps >= full.ChargedOps {
		t.Fatalf("threshold charged %d ops >= unbounded %d", thr.ChargedOps, full.ChargedOps)
	}
}

// TestOptiCutsChargedOps does the same for the OPTI cutoff on the
// Cholesky task set (the Figure 11 story).
func TestOptiCutsChargedOps(t *testing.T) {
	inst := workload.Cholesky(16)
	full := runStrat(t, sched.NewDARTSPair(sched.DARTSOptions{LUF: true, ThreeInputs: true}), inst, 4, sim.DefaultNsPerOp)
	opti := runStrat(t, sched.NewDARTSPair(sched.DARTSOptions{LUF: true, Opti: true, ThreeInputs: true}), inst, 4, sim.DefaultNsPerOp)
	if opti.ChargedOps >= full.ChargedOps/2 {
		t.Fatalf("OPTI charged %d ops, unbounded %d: expected a large cut", opti.ChargedOps, full.ChargedOps)
	}
	// At this small size the scan cost is not yet crippling, so OPTI's
	// cheaper-but-coarser choices only need to stay in the same league;
	// its throughput advantage appears at the Figure 11 sizes (see the
	// fig11 experiment and examples/cholesky).
	if opti.GFlops < full.GFlops*0.8 {
		t.Fatalf("OPTI far slower than the full scan: %.0f vs %.0f", opti.GFlops, full.GFlops)
	}
}

// TestChargedCostOnlyAffectsMakespanWhenEnabled: the same run with and
// without NsPerOp must move exactly the same bytes (cost gating delays
// starts, it must not change scheduling decisions).
func TestChargedCostOnlyAffectsMakespanWhenEnabled(t *testing.T) {
	inst := workload.Matmul2D(20)
	free := runStrat(t, sched.NewDARTSPair(sched.DARTSOptions{LUF: true}), inst, 2, 0)
	paid := runStrat(t, sched.NewDARTSPair(sched.DARTSOptions{LUF: true}), inst, 2, sim.DefaultNsPerOp)
	if free.Makespan > paid.Makespan {
		t.Fatalf("charging cost made the run faster: %v vs %v", paid.Makespan, free.Makespan)
	}
}

// TestMHFPSingleGPUKeepsPackageOrder: on one GPU, HFP's whole value is
// the task order inside the single final package; the transfers must be
// far below EAGER's on the constrained 2D product.
func TestMHFPSingleGPUKeepsPackageOrder(t *testing.T) {
	inst := workload.Matmul2D(40)
	hfp := runStrat(t, func() (sim.Scheduler, sim.EvictionPolicy) {
		return sched.NewMHFP(false, 0)(), nil
	}, inst, 1, 0)
	eager := runStrat(t, func() (sim.Scheduler, sim.EvictionPolicy) {
		return sched.NewEager()(), nil
	}, inst, 1, 0)
	if float64(hfp.BytesTransferred)*2 > float64(eager.BytesTransferred) {
		t.Fatalf("mHFP moved %d B, EAGER %d B: packing should halve traffic at least",
			hfp.BytesTransferred, eager.BytesTransferred)
	}
}

// TestDARTSVariantsAgreeWhenUnconstrained: with everything fitting in
// memory, all DARTS variants must reach near-identical throughput (the
// variants only matter under pressure or cost).
func TestDARTSVariantsAgreeWhenUnconstrained(t *testing.T) {
	inst := workload.Matmul2D(15) // 442 MB < 500 MB
	variants := []sched.DARTSOptions{
		{},
		{LUF: true},
		{LUF: true, ThreeInputs: true},
		{LUF: true, Opti: true},
	}
	var first float64
	for i, opt := range variants {
		res := runStrat(t, sched.NewDARTSPair(opt), inst, 1, 0)
		if i == 0 {
			first = res.GFlops
			continue
		}
		ratio := res.GFlops / first
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("%+v at %.0f GFlop/s deviates from %.0f", opt, res.GFlops, first)
		}
	}
}

// TestWorkStealingBaseline: the locality-aware work-stealing baseline
// must complete everything, balance load, and land between EAGER and the
// partition/planning strategies on the constrained 2D product.
func TestWorkStealingBaseline(t *testing.T) {
	inst := workload.Matmul2D(40)
	ws := runStrat(t, func() (sim.Scheduler, sim.EvictionPolicy) {
		return sched.NewWorkStealing(0, 0)(), nil
	}, inst, 4, 0)
	eager := runStrat(t, func() (sim.Scheduler, sim.EvictionPolicy) {
		return sched.NewEager()(), nil
	}, inst, 4, 0)
	if ws.GFlops <= eager.GFlops {
		t.Fatalf("WS-locality %.0f GFlop/s did not beat EAGER %.0f", ws.GFlops, eager.GFlops)
	}
	fair := inst.NumTasks() / 4
	for k, g := range ws.GPU {
		if g.Tasks > 2*fair {
			t.Fatalf("gpu %d ran %d tasks (fair %d)", k, g.Tasks, fair)
		}
	}
}
