package sched

import (
	"sort"

	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

// MHFP implements the paper's multi-GPU Hierarchical Fair Packing
// (§IV-C, Algorithm 4). HFP gathers tasks sharing many input data into
// packages whose inputs fit in GPU memory, then merges packages by data
// affinity until K remain. Package loads are then balanced by moving
// tasks from the tail of the heaviest package to the lightest, and the
// runtime adds Ready reordering and task stealing.
type MHFP struct {
	base
	chargeCost  bool
	readyWindow int
	steal       bool
	queues      [][]taskgraph.TaskID
	view        sim.RuntimeView
	name        string
}

// NewMHFP returns a Factory for mHFP. chargeCost selects whether the
// packing cost is charged to the simulated clock (the paper plots "mHFP"
// and "mHFP no sched. time"). readyWindow bounds the Ready scan
// (0 selects DefaultReadyWindow).
func NewMHFP(chargeCost bool, readyWindow int) Factory {
	return NewMHFPSteal(chargeCost, readyWindow, true)
}

// NewMHFPSteal is NewMHFP with task stealing switchable, for the
// stealing ablation bench.
func NewMHFPSteal(chargeCost bool, readyWindow int, steal bool) Factory {
	name := "mHFP"
	if !chargeCost {
		name = "mHFP no sched. time"
	}
	if !steal {
		name += " no steal"
	}
	if readyWindow == 0 {
		readyWindow = DefaultReadyWindow
	}
	return func() sim.Scheduler {
		return &MHFP{chargeCost: chargeCost, readyWindow: readyWindow, steal: steal, name: name}
	}
}

// Name returns "mHFP" or "mHFP no sched. time".
func (s *MHFP) Name() string { return s.name }

// hfpPackage is one package of tasks under construction.
type hfpPackage struct {
	tasks  []taskgraph.TaskID
	inputs map[taskgraph.DataID]bool
	bytes  int64 // total footprint of inputs
	flops  float64
	alive  bool
}

// hfpCostPerPair models the cost the paper's HFP implementation pays per
// candidate package pair at every merge step: it recomputes package
// affinities from scratch, which makes the packing time cubic in the
// number of tasks and "prohibitively large" for big working sets (§V-B).
// Our implementation uses an incremental index instead, so we charge the
// original's operation count rather than our own.
const hfpCostPerPair = 2

// Init runs the two HFP packing phases and the load-balancing step of
// Algorithm 4, producing one task queue per GPU.
func (s *MHFP) Init(inst *taskgraph.Instance, view sim.RuntimeView) {
	s.view = view
	k := view.Platform().NumGPUs
	mem := view.Platform().MemoryBytes

	pkgs := make([]*hfpPackage, inst.NumTasks())
	for i := range pkgs {
		t := taskgraph.TaskID(i)
		p := &hfpPackage{
			tasks:  []taskgraph.TaskID{t},
			inputs: make(map[taskgraph.DataID]bool, len(inst.Inputs(t))),
			flops:  inst.Task(t).Flops,
			alive:  true,
		}
		for _, d := range inst.Inputs(t) {
			p.inputs[d] = true
			p.bytes += inst.Data(d).Size
		}
		pkgs[i] = p
	}
	// data -> packages currently containing it, for fast affinity lookup.
	dataIdx := make([]map[int]bool, inst.NumData())
	for d := range dataIdx {
		dataIdx[d] = make(map[int]bool)
	}
	for i, p := range pkgs {
		for d := range p.inputs {
			dataIdx[d][i] = true
		}
	}
	alive := len(pkgs)
	var chargedOps int64

	// sharedBytes computes the affinity of package pi with all other live
	// packages, returning the best partner under the given predicate.
	bestPartner := func(pi int, feasible func(qi int, shared int64) bool) (int, int64) {
		p := pkgs[pi]
		shared := make(map[int]int64)
		for d := range p.inputs {
			sz := inst.Data(d).Size
			for qi := range dataIdx[d] {
				if qi != pi {
					shared[qi] += sz
				}
			}
		}
		best, bestShared := -1, int64(-1)
		// Deterministic iteration order.
		cands := make([]int, 0, len(shared))
		for qi := range shared {
			cands = append(cands, qi)
		}
		sort.Ints(cands)
		for _, qi := range cands {
			sh := shared[qi]
			if !feasible(qi, sh) {
				continue
			}
			q := pkgs[qi]
			better := sh > bestShared ||
				(sh == bestShared && best >= 0 && len(q.tasks) < len(pkgs[best].tasks))
			if better {
				best, bestShared = qi, sh
			}
		}
		return best, bestShared
	}

	merge := func(pi, qi int) {
		p, q := pkgs[pi], pkgs[qi]
		p.tasks = append(p.tasks, q.tasks...)
		p.flops += q.flops
		for d := range q.inputs {
			if !p.inputs[d] {
				p.inputs[d] = true
				p.bytes += inst.Data(d).Size
			}
			delete(dataIdx[d], qi)
			dataIdx[d][pi] = true
		}
		q.alive = false
		q.tasks = nil
		q.inputs = nil
		alive--
		// Cost of one merge step in the original implementation: all
		// pairs re-examined.
		chargedOps += int64(alive) * int64(alive) * hfpCostPerPair
	}

	// byAscSize returns live package ids ordered by task count.
	byAscSize := func() []int {
		ids := make([]int, 0, alive)
		for i, p := range pkgs {
			if p.alive {
				ids = append(ids, i)
			}
		}
		sort.Slice(ids, func(a, b int) bool {
			if len(pkgs[ids[a]].tasks) != len(pkgs[ids[b]].tasks) {
				return len(pkgs[ids[a]].tasks) < len(pkgs[ids[b]].tasks)
			}
			return ids[a] < ids[b]
		})
		return ids
	}

	// mergeRounds performs hierarchical merge rounds: in each round the
	// packages are visited from fewest tasks to most, each merging with
	// its best-affinity feasible partner not yet merged this round, so
	// the package count roughly halves per level. bounded selects
	// whether the memory bound applies (phase 1) or not (phase 2).
	used := make([]int32, len(pkgs))
	round := int32(0)
	mergeRounds := func(bounded bool) {
		for alive > k {
			round++
			mergedAny := false
			for _, pi := range byAscSize() {
				if alive <= k {
					return
				}
				if !pkgs[pi].alive || used[pi] == round {
					continue
				}
				p := pkgs[pi]
				qi, sh := bestPartner(pi, func(qi int, shared int64) bool {
					if used[qi] == round {
						return false
					}
					return !bounded || p.bytes+pkgs[qi].bytes-shared <= mem
				})
				if qi < 0 || sh < 0 {
					continue
				}
				merge(pi, qi)
				used[pi] = round
				mergedAny = true
			}
			if !mergedAny {
				return
			}
		}
	}
	// Phase 1: merge while the union of inputs fits in GPU memory.
	mergeRounds(true)
	// Phase 2: bind packages with high affinity until K remain,
	// ignoring the memory bound.
	mergeRounds(false)
	// If affinity alone could not reach K packages (disjoint data),
	// merge the smallest packages directly.
	for alive > k {
		ids := byAscSize()
		merge(ids[0], ids[1])
	}
	if s.chargeCost {
		view.ChargeStatic(chargedOps)
	}

	// Collect final packages.
	final := make([]*hfpPackage, 0, k)
	for _, p := range pkgs {
		if p.alive {
			final = append(final, p)
		}
	}
	// Load balancing (Algorithm 4): move tasks from the tail of the
	// heaviest package to the lightest until no package exceeds the
	// average load by more than one task.
	if len(final) > 1 {
		var totalFlops float64
		maxTaskFlops := 0.0
		for _, p := range final {
			totalFlops += p.flops
		}
		for _, t := range inst.Tasks() {
			if t.Flops > maxTaskFlops {
				maxTaskFlops = t.Flops
			}
		}
		avg := totalFlops / float64(len(final))
		for {
			sort.Slice(final, func(a, b int) bool { return final[a].flops > final[b].flops })
			pmax, pmin := final[0], final[len(final)-1]
			if pmax.flops <= avg+maxTaskFlops || len(pmax.tasks) <= 1 {
				break
			}
			moved := false
			for pmax.flops > avg && pmin.flops < avg && len(pmax.tasks) > 1 {
				last := pmax.tasks[len(pmax.tasks)-1]
				f := inst.Task(last).Flops
				pmax.tasks = pmax.tasks[:len(pmax.tasks)-1]
				pmax.flops -= f
				pmin.tasks = append(pmin.tasks, last)
				pmin.flops += f
				moved = true
			}
			if !moved {
				break
			}
		}
	}
	s.queues = make([][]taskgraph.TaskID, k)
	for i, p := range final {
		s.queues[i] = p.tasks
	}
}

// PopTask applies Ready to the local queue, stealing half of the most
// loaded GPU's remaining tasks first if the local queue is empty.
func (s *MHFP) PopTask(gpu int) (taskgraph.TaskID, bool) {
	if len(s.queues[gpu]) == 0 {
		if !s.steal || !stealHalf(s.queues, gpu) {
			return taskgraph.NoTask, false
		}
	}
	i := readyPick(s.view, gpu, s.queues[gpu], s.readyWindow, true)
	if i < 0 {
		return taskgraph.NoTask, false
	}
	t := s.queues[gpu][i]
	s.queues[gpu] = removeAt(s.queues[gpu], i)
	return t, true
}

// GPUDropped redistributes the dead GPU's package to the survivors (the
// packages' internal order is preserved task by task; see GPUDropped on
// HMetisR for why stealing alone cannot drain a dead queue).
func (s *MHFP) GPUDropped(gpu int, requeue []taskgraph.TaskID) {
	requeueToAlive(s.view, s.queues, gpu, requeue, nil)
}
