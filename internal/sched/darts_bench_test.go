package sched

import (
	"testing"

	"memsched/internal/workload"
)

// BenchmarkDARTSPop measures the DARTS scheduling decision itself: one
// op drains the full task pool of a 2D product through PopTask on two
// GPUs, exercising selectData (Algorithm 5 lines 4-11) once per planning
// round. The decision sits on the critical path of every simulated task,
// so allocs/op here translate directly into harness wall time.
func BenchmarkDARTSPop(b *testing.B) {
	for _, c := range []struct {
		name string
		opts DARTSOptions
	}{
		{"plain", DARTSOptions{}},
		{"luf", DARTSOptions{LUF: true}},
		{"luf-opti", DARTSOptions{LUF: true, Opti: true}},
		{"luf-3inputs", DARTSOptions{LUF: true, ThreeInputs: true}},
	} {
		b.Run(c.name, func(b *testing.B) {
			inst := workload.Matmul2D(30) // 900 tasks, 60 data
			pair := NewDARTSPair(c.opts)
			pops := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := newFakeView(inst, 2)
				s, _ := pair()
				s.Init(inst, v)
				for {
					_, ok0 := s.PopTask(0)
					_, ok1 := s.PopTask(1)
					if !ok0 && !ok1 {
						break
					}
					pops++
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(pops)/float64(b.N), "pops/op")
		})
	}
}
