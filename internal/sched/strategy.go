package sched

import (
	"fmt"
	"sort"
	"strings"

	"memsched/internal/sim"
)

// Strategy couples a scheduler builder with its eviction policy builder.
// A nil policy means the strategy uses the default LRU (every strategy of
// the paper except DARTS+LUF).
type Strategy struct {
	// Label is the display name used on the paper's figures.
	Label string
	// New builds a fresh scheduler (and eviction policy, or nil for
	// LRU) for one simulation run. New must be safe for concurrent
	// use: parallel experiment workers call it simultaneously (see
	// Factory).
	New func() (sim.Scheduler, sim.EvictionPolicy)
}

func simple(label string, f Factory) Strategy {
	return Strategy{Label: label, New: func() (sim.Scheduler, sim.EvictionPolicy) { return f(), nil }}
}

// EagerStrategy returns the EAGER baseline.
func EagerStrategy() Strategy { return simple("EAGER", NewEager()) }

// DMDARStrategy returns StarPU's DMDAR scheduler.
func DMDARStrategy() Strategy { return simple("DMDAR", NewDMDAR(0)) }

// HMetisRStrategy returns hMETIS+R; chargeCost selects whether the
// partitioning time is charged ("hMETIS+R" vs "hMETIS+R no part. time").
func HMetisRStrategy(chargeCost bool) Strategy {
	f := NewHMetisR(chargeCost, 0)
	label := "hMETIS+R"
	if !chargeCost {
		label = "hMETIS+R no part. time"
	}
	return simple(label, f)
}

// MHFPStrategy returns mHFP; chargeCost selects whether the packing time
// is charged ("mHFP" vs "mHFP no sched. time").
func MHFPStrategy(chargeCost bool) Strategy {
	f := NewMHFP(chargeCost, 0)
	label := "mHFP"
	if !chargeCost {
		label = "mHFP no sched. time"
	}
	return simple(label, f)
}

// DARTSStrategy returns the DARTS variant described by opts.
func DARTSStrategy(opts DARTSOptions) Strategy {
	pair := NewDARTSPair(opts)
	return Strategy{Label: opts.name(), New: pair}
}

// All returns every strategy of the paper under its figure label,
// for CLI listing.
func All() []Strategy {
	return []Strategy{
		EagerStrategy(),
		DMDARStrategy(),
		HMetisRStrategy(true),
		HMetisRStrategy(false),
		MHFPStrategy(true),
		MHFPStrategy(false),
		DARTSStrategy(DARTSOptions{}),
		DARTSStrategy(DARTSOptions{LUF: true}),
		DARTSStrategy(DARTSOptions{LUF: true, ThreeInputs: true}),
		DARTSStrategy(DARTSOptions{LUF: true, Opti: true}),
		DARTSStrategy(DARTSOptions{LUF: true, Opti: true, ThreeInputs: true}),
		DARTSStrategy(DARTSOptions{LUF: true, Threshold: 10}),
	}
}

// ByName resolves a strategy by its label (case-insensitive). It returns
// an error listing the known labels on failure.
func ByName(name string) (Strategy, error) {
	for _, s := range All() {
		if strings.EqualFold(s.Label, name) {
			return s, nil
		}
	}
	known := make([]string, 0)
	for _, s := range All() {
		known = append(known, s.Label)
	}
	sort.Strings(known)
	return Strategy{}, fmt.Errorf("sched: unknown strategy %q (known: %s)", name, strings.Join(known, ", "))
}
