package sched

import (
	"fmt"
	"sort"

	"memsched/internal/taskgraph"
)

// EvictionStat summarizes every eviction of one data item within a run.
type EvictionStat struct {
	// Data is the victim.
	Data taskgraph.DataID `json:"data"`
	// Count is how many times it was evicted.
	Count int `json:"count"`
	// MaxFutureUses is the worst future-use count it was evicted with (0
	// means every eviction of it was an ideal LUF choice).
	MaxFutureUses int64 `json:"max_future_uses"`
}

// maxTopEvicted bounds the per-run eviction leaderboard so the digest
// stays O(1) in run length once serialized.
const maxTopEvicted = 8

// DecisionDigest is a bounded summary of a run's scheduler decision log,
// compact enough to embed in every telemetry JSONL line. Where the full
// DecisionLog answers "what happened, line by line", the digest answers
// the cross-run question "did the scheduler behave differently": counts
// per decision kind, how often data was evicted while still needed, and
// which victims were churned hardest.
type DecisionDigest struct {
	// SelectData, Fallbacks, Evictions and Steals count decisions per
	// kind (see DecisionKind).
	SelectData int `json:"select_data"`
	Fallbacks  int `json:"fallbacks"`
	Evictions  int `json:"evictions"`
	Steals     int `json:"steals"`
	// Requeues counts tasks reassigned away from a dead GPU after a
	// fault-injected dropout; always 0 on fault-free runs.
	Requeues int `json:"requeues,omitempty"`
	// PrematureEvictions counts eviction victims that still had future
	// uses — each one is a likely reload later.
	PrematureEvictions int `json:"premature_evictions"`
	// MeanFreedTasks is the average winning score of the select-data
	// decisions (tasks freed per chosen load); 0 when none were made.
	MeanFreedTasks float64 `json:"mean_freed_tasks,omitempty"`
	// TopEvicted ranks the most-evicted data items (by count, ties by
	// id), capped at maxTopEvicted entries.
	TopEvicted []EvictionStat `json:"top_evicted,omitempty"`
}

// Total returns the number of decisions folded into the digest.
func (d *DecisionDigest) Total() int {
	return d.SelectData + d.Fallbacks + d.Evictions + d.Steals + d.Requeues
}

// DigestRecorder is a DecisionRecorder folding the decision stream into
// a DecisionDigest with O(distinct victims) memory. Like DecisionLog it
// is not safe for concurrent use; attach one per run.
type DigestRecorder struct {
	d        DecisionDigest
	freedSum int64
	evicted  map[taskgraph.DataID]*EvictionStat
}

// Record folds one decision into the digest.
func (r *DigestRecorder) Record(dec Decision) {
	switch dec.Kind {
	case DecisionSelectData:
		r.d.SelectData++
		r.freedSum += dec.FreedTasks
	case DecisionFallback:
		r.d.Fallbacks++
	case DecisionEvict:
		r.d.Evictions++
		if dec.FutureUses > 0 {
			r.d.PrematureEvictions++
		}
		if r.evicted == nil {
			r.evicted = make(map[taskgraph.DataID]*EvictionStat)
		}
		s := r.evicted[dec.Data]
		if s == nil {
			s = &EvictionStat{Data: dec.Data}
			r.evicted[dec.Data] = s
		}
		s.Count++
		if dec.FutureUses > s.MaxFutureUses {
			s.MaxFutureUses = dec.FutureUses
		}
	case DecisionSteal:
		r.d.Steals++
	case DecisionRequeue:
		r.d.Requeues++
	}
}

// Digest returns the accumulated digest. The eviction leaderboard is
// ordered deterministically (count descending, data id ascending), so
// identical runs serialize to identical digests.
func (r *DigestRecorder) Digest() *DecisionDigest {
	d := r.d
	if d.SelectData > 0 {
		d.MeanFreedTasks = float64(r.freedSum) / float64(d.SelectData)
	}
	if len(r.evicted) > 0 {
		top := make([]EvictionStat, 0, len(r.evicted))
		for _, s := range r.evicted {
			top = append(top, *s)
		}
		sort.Slice(top, func(i, j int) bool {
			if top[i].Count != top[j].Count {
				return top[i].Count > top[j].Count
			}
			return top[i].Data < top[j].Data
		})
		if len(top) > maxTopEvicted {
			top = top[:maxTopEvicted]
		}
		d.TopEvicted = top
	}
	return &d
}

// EvictionOf looks up one data item's eviction record on the digest's
// leaderboard. It is how the critical-path explanation in `paperbench
// compare` ties a blamed data block back to the scheduler decision that
// churned it; ok is false when the item was never evicted (or fell off
// the bounded leaderboard).
func (d *DecisionDigest) EvictionOf(data taskgraph.DataID) (EvictionStat, bool) {
	if d == nil {
		return EvictionStat{}, false
	}
	for _, s := range d.TopEvicted {
		if s.Data == data {
			return s, true
		}
	}
	return EvictionStat{}, false
}

// ReplayDigest rebuilds a digest from an in-memory decision list (e.g. a
// DecisionList captured by a test or a -trace-cell deep dive), so a full
// log recorded once can be joined against digests from other runs.
func ReplayDigest(decs []Decision) *DecisionDigest {
	var r DigestRecorder
	for _, d := range decs {
		r.Record(d)
	}
	return r.Digest()
}

// JoinDigests compares the decision digests of the same cell from two
// runs and renders the behavioural differences as human-readable lines,
// each citing the concrete decision-log evidence from both runs. It is
// the explanation layer behind `paperbench compare`: the metric diff
// says a cell regressed, the joined digests say what the scheduler did
// differently. Returns a single diagnostic line when either digest is
// missing.
func JoinDigests(old, new *DecisionDigest) []string {
	switch {
	case old == nil && new == nil:
		return []string{"no decision digest in either capture (re-run with -telemetry to embed them)"}
	case old == nil:
		return []string{fmt.Sprintf("old capture has no decision digest; new run recorded %d decisions (%d select-data, %d evictions, %d fallbacks, %d steals)",
			new.Total(), new.SelectData, new.Evictions, new.Fallbacks, new.Steals)}
	case new == nil:
		return []string{fmt.Sprintf("new capture has no decision digest; old run recorded %d decisions (%d select-data, %d evictions, %d fallbacks, %d steals)",
			old.Total(), old.SelectData, old.Evictions, old.Fallbacks, old.Steals)}
	}

	lines := []string{fmt.Sprintf(
		"old run: %d decisions (%d select-data, %d evictions, %d fallbacks, %d steals); new run: %d (%d select-data, %d evictions, %d fallbacks, %d steals)",
		old.Total(), old.SelectData, old.Evictions, old.Fallbacks, old.Steals,
		new.Total(), new.SelectData, new.Evictions, new.Fallbacks, new.Steals)}

	// Eviction churn: the new run's worst victim, joined against the old
	// run's record for the same data.
	if len(new.TopEvicted) > 0 {
		w := new.TopEvicted[0]
		oldLine := "old run never evicted it"
		for _, s := range old.TopEvicted {
			if s.Data == w.Data {
				oldLine = fmt.Sprintf("old run evicted it %d× (max %d future uses)", s.Count, s.MaxFutureUses)
				break
			}
		}
		lines = append(lines, fmt.Sprintf(
			"worst-churned data in new run: evicted data %d %d× (max %d future uses); %s",
			w.Data, w.Count, w.MaxFutureUses, oldLine))
	} else if len(old.TopEvicted) > 0 {
		w := old.TopEvicted[0]
		lines = append(lines, fmt.Sprintf(
			"new run evicted nothing; old run's worst victim was data %d (%d×, max %d future uses)",
			w.Data, w.Count, w.MaxFutureUses))
	}

	if old.PrematureEvictions != new.PrematureEvictions {
		lines = append(lines, fmt.Sprintf(
			"premature evictions (victim still had future uses): %d in old run vs %d in new run — each one is a likely reload",
			old.PrematureEvictions, new.PrematureEvictions))
	}
	if old.Fallbacks != new.Fallbacks {
		lines = append(lines, fmt.Sprintf(
			"fallback task picks (no load freed a task): %d in old run vs %d in new run",
			old.Fallbacks, new.Fallbacks))
	}
	if old.Steals != new.Steals {
		lines = append(lines, fmt.Sprintf(
			"work steals: %d in old run vs %d in new run", old.Steals, new.Steals))
	}
	if old.Requeues != new.Requeues {
		lines = append(lines, fmt.Sprintf(
			"dropout requeues: %d in old run vs %d in new run", old.Requeues, new.Requeues))
	}
	if old.SelectData > 0 && new.SelectData > 0 && old.MeanFreedTasks != new.MeanFreedTasks {
		lines = append(lines, fmt.Sprintf(
			"select-data efficiency: %.2f tasks freed per chosen load in old run vs %.2f in new run",
			old.MeanFreedTasks, new.MeanFreedTasks))
	}
	return lines
}
