package sched

import (
	"fmt"

	"memsched/internal/hypergraph"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

// HMetisR implements the paper's hMETIS+R strategy (§IV-B, Algorithm 3):
// model data sharing as a hypergraph (one vertex per task, one hyperedge
// per data item connecting all its consumers), partition it into K
// balanced parts with few cut hyperedges, allocate part k to GPU k, then
// at runtime reorder each local queue with Ready and steal half of the
// most loaded GPU's remaining tasks when idle.
type HMetisR struct {
	base
	cfg         hypergraph.Config
	chargeCost  bool
	readyWindow int
	steal       bool
	clique      bool // partition the clique expansion instead (METIS-style, [10])
	queues      [][]taskgraph.TaskID
	view        sim.RuntimeView
	name        string
}

// NewHMetisR returns a Factory for hMETIS+R. chargeCost selects whether
// the partitioning cost is charged to the simulated clock (the paper plots
// both "hMETIS+R" and "hMETIS+R no part. time"). readyWindow bounds the
// Ready scan (0 = whole queue).
func NewHMetisR(chargeCost bool, readyWindow int) Factory {
	return NewHMetisRSteal(chargeCost, readyWindow, true)
}

// NewHMetisRSteal is NewHMetisR with task stealing switchable, for the
// stealing ablation bench.
func NewHMetisRSteal(chargeCost bool, readyWindow int, steal bool) Factory {
	name := "hMETIS+R"
	if !chargeCost {
		name = "hMETIS+R no part. time"
	}
	if !steal {
		name += " no steal"
	}
	if readyWindow == 0 {
		readyWindow = DefaultReadyWindow
	}
	return func() sim.Scheduler {
		return &HMetisR{
			cfg:         hypergraph.Config{UBFactor: 1, Nruns: 20, VCycles: 2, Parallel: true},
			chargeCost:  chargeCost,
			readyWindow: readyWindow,
			steal:       steal,
			name:        name,
		}
	}
}

// NewMetisR returns the clique-expansion variant: data sharing is modeled
// as a plain graph whose edges are weighted by shared data (as Yoo et
// al. [10] do with METIS) instead of a hypergraph. §IV-B of the paper
// argues this over-counts data shared by three or more tasks; the
// ablation bench measures the difference.
func NewMetisR(chargeCost bool, readyWindow int) Factory {
	name := "METIS+R (clique)"
	if !chargeCost {
		name = "METIS+R (clique) no part. time"
	}
	if readyWindow == 0 {
		readyWindow = DefaultReadyWindow
	}
	return func() sim.Scheduler {
		return &HMetisR{
			cfg:         hypergraph.Config{UBFactor: 1, Nruns: 20, VCycles: 2, Parallel: true},
			chargeCost:  chargeCost,
			readyWindow: readyWindow,
			steal:       true,
			clique:      true,
			name:        name,
		}
	}
}

// Name returns "hMETIS+R" or "hMETIS+R no part. time".
func (s *HMetisR) Name() string { return s.name }

// Init builds the hypergraph H = (T, {h_j}) with one hyperedge per data
// item (weighted by its size), partitions it K ways, and fills the
// per-GPU queues in submission order within each part.
func (s *HMetisR) Init(inst *taskgraph.Instance, view sim.RuntimeView) {
	s.view = view
	k := view.Platform().NumGPUs
	s.queues = make([][]taskgraph.TaskID, k)
	if k == 1 {
		q := make([]taskgraph.TaskID, inst.NumTasks())
		for i := range q {
			q[i] = taskgraph.TaskID(i)
		}
		s.queues[0] = q
		return
	}
	h := hypergraph.New(inst.NumTasks())
	for d := 0; d < inst.NumData(); d++ {
		cons := inst.Consumers(taskgraph.DataID(d))
		pins := make([]int32, len(cons))
		for i, t := range cons {
			pins[i] = int32(t)
		}
		// Weight hyperedges by data size so the cut counts bytes: with
		// uniform sizes this matches the paper exactly, and it extends
		// naturally to heterogeneous data (§III notes the extension).
		w := inst.Data(taskgraph.DataID(d)).Size / (1 << 20)
		if w < 1 {
			w = 1
		}
		h.AddNet(w, pins...)
	}
	s.cfg.K = k
	var part []int
	var stats hypergraph.Stats
	var err error
	if s.clique {
		part, stats, err = hypergraph.PartitionClique(h, s.cfg)
	} else {
		part, stats, err = hypergraph.Partition(h, s.cfg)
	}
	if err != nil {
		panic(fmt.Sprintf("sched: %s partition failed: %v", s.name, err))
	}
	if s.chargeCost {
		view.ChargeStatic(stats.Ops)
	}
	for t := 0; t < inst.NumTasks(); t++ {
		g := part[t]
		s.queues[g] = append(s.queues[g], taskgraph.TaskID(t))
	}
}

// PopTask applies Ready to the local queue, stealing half of the most
// loaded GPU's remaining tasks first if the local queue is empty.
func (s *HMetisR) PopTask(gpu int) (taskgraph.TaskID, bool) {
	if len(s.queues[gpu]) == 0 {
		if !s.steal || !stealHalf(s.queues, gpu) {
			return taskgraph.NoTask, false
		}
	}
	i := readyPick(s.view, gpu, s.queues[gpu], s.readyWindow, false)
	if i < 0 {
		return taskgraph.NoTask, false
	}
	t := s.queues[gpu][i]
	s.queues[gpu] = removeAt(s.queues[gpu], i)
	return t, true
}

// GPUDropped redistributes the dead GPU's partition to the survivors.
// Stealing alone cannot drain it: stealHalf only splits queues of two or
// more tasks, and the no-steal variants have no stealing at all.
func (s *HMetisR) GPUDropped(gpu int, requeue []taskgraph.TaskID) {
	requeueToAlive(s.view, s.queues, gpu, requeue, nil)
}
