// Package sched implements the five scheduling strategies compared in the
// paper (§IV): the EAGER baseline, StarPU's DMDAR, hMETIS+R (hypergraph
// partitioning with Ready reordering and task stealing), mHFP (multi-GPU
// Hierarchical Fair Packing), and DARTS (Data-Aware Reactive Task
// Scheduling) with its LUF eviction policy and the 3inputs/OPTI/threshold
// variants.
//
// Schedulers are single-use: build a fresh one (through a Factory) for
// every simulation run.
package sched

import (
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

// DefaultReadyWindow is the default bound on how many queued tasks the
// Ready reordering examines per decision. StarPU's dmdar can only reorder
// a limited number of tasks ahead of the computation (the paper leans on
// this in SV-C/SV-D); an unbounded scan would make DMDAR insensitive to
// the task submission order, contradicting Figure 9.
const DefaultReadyWindow = 256

// Factory builds a fresh scheduler for one run. Simulation sweeps run the
// same strategy on many instances; each run needs its own state.
//
// Factories must be safe for concurrent use: the parallel experiment
// harness (internal/expr) invokes the same Factory from many worker
// goroutines, so a Factory must not mutate captured variables — resolve
// defaults before returning the closure.
type Factory func() sim.Scheduler

// base provides no-op notification hooks for schedulers that do not track
// runtime events.
type base struct{}

func (base) TaskDone(gpu int, t taskgraph.TaskID)    {}
func (base) DataLoaded(gpu int, d taskgraph.DataID)  {}
func (base) DataEvicted(gpu int, d taskgraph.DataID) {}

// readyPick implements the paper's Ready reordering heuristic
// (Algorithm 2): among the tasks of queue, return the index of a task
// requiring the fewest new data transfers on gpu, counting data already
// resident or in flight as present. Ties are broken uniformly at random,
// as the arbitrary ordering of StarPU's deque does: on the 2D product
// this is what lets several block-rows of A become resident together and
// be reused across rows. window bounds how many queue entries are
// examined (0 means the whole queue). stableTies keeps the first minimum
// instead (HFP packages carry a deliberate internal order that Ready must
// preserve: "packages are stored as lists so that we do not modify the
// order of tasks within packages", SIV-C). It charges one operation per
// input examined and returns -1 only for an empty queue.
func readyPick(view sim.RuntimeView, gpu int, queue []taskgraph.TaskID, window int, stableTies bool) int {
	if len(queue) == 0 {
		return -1
	}
	limit := len(queue)
	if window > 0 && window < limit {
		limit = window
	}
	inst := view.Instance()
	rng := view.Rand()
	best, bestMissing, ties := -1, int(^uint(0)>>1), 0
	var ops int64
	for i := 0; i < limit; i++ {
		t := queue[i]
		ops += int64(len(inst.Inputs(t)))
		switch missing := view.MissingInputs(gpu, t); {
		case missing < bestMissing:
			best, bestMissing, ties = i, missing, 1
		case missing == bestMissing:
			if stableTies {
				break
			}
			ties++
			if rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	view.Charge(ops)
	return best
}

// stealHalf implements the task-stealing rule shared by hMETIS+R and mHFP
// (§IV-B): an idle GPU steals half of the remaining tasks of the most
// loaded GPU, taking them from the tail of its list. It moves the stolen
// tasks into queues[thief] and reports whether anything was stolen.
func stealHalf(queues [][]taskgraph.TaskID, thief int) bool {
	richest, richestLoad := -1, 1 // require at least 2 tasks to split
	for k := range queues {
		if k == thief {
			continue
		}
		if len(queues[k]) > richestLoad {
			richest, richestLoad = k, len(queues[k])
		}
	}
	if richest < 0 {
		return false
	}
	n := richestLoad / 2
	cut := richestLoad - n
	stolen := queues[richest][cut:]
	queues[richest] = queues[richest][:cut]
	queues[thief] = append(queues[thief], stolen...)
	return true
}

// removeAt deletes element i of q preserving order.
func removeAt(q []taskgraph.TaskID, i int) []taskgraph.TaskID {
	return append(q[:i], q[i+1:]...)
}

// requeueToAlive is the shared dropout recovery of the per-GPU-queue
// schedulers: the dead GPU's unserved queue plus the engine-reported
// requeue list (its killed and windowed tasks) are redistributed to the
// surviving GPUs, each task to the currently shortest queue. Explicit
// redistribution is required even for the stealing schedulers: stealHalf
// only splits queues holding at least two tasks, so a dead queue with a
// single task would never be drained by a thief. rec, when non-nil,
// records one DecisionRequeue per moved task.
func requeueToAlive(view sim.RuntimeView, queues [][]taskgraph.TaskID, dead int, requeue []taskgraph.TaskID, rec DecisionRecorder) {
	pending := make([]taskgraph.TaskID, 0, len(requeue)+len(queues[dead]))
	pending = append(pending, requeue...)
	pending = append(pending, queues[dead]...)
	queues[dead] = nil
	for _, t := range pending {
		best := -1
		for g := range queues {
			if g == dead || !view.Alive(g) {
				continue
			}
			if best < 0 || len(queues[g]) < len(queues[best]) {
				best = g
			}
		}
		if best < 0 {
			// No survivor (the engine's plan validation prevents this);
			// the stall diagnostic will name the stranded tasks.
			return
		}
		queues[best] = append(queues[best], t)
		if rec != nil {
			rec.Record(Decision{Kind: DecisionRequeue, GPU: best, Victim: dead, Task: t, Data: taskgraph.NoData})
		}
	}
}
