package sched

import (
	"fmt"
	"io"

	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

// DecisionKind classifies one scheduler decision.
type DecisionKind uint8

const (
	// DecisionSelectData is a DARTS data selection (Algorithm 5 line 9):
	// the data whose load frees the most tasks was chosen.
	DecisionSelectData DecisionKind = iota
	// DecisionFallback is the DARTS else branch: no single load frees a
	// task, so a task was picked directly (randomly or via 3inputs).
	DecisionFallback
	// DecisionEvict is a LUF eviction choice (Algorithm 6).
	DecisionEvict
	// DecisionSteal is one task moving between work-stealing deques.
	DecisionSteal
	// DecisionRequeue is a task reassigned to a surviving GPU after a
	// dropout (fault injection); Victim holds the dead GPU.
	DecisionRequeue
)

// String returns the mnemonic of the kind.
func (k DecisionKind) String() string {
	switch k {
	case DecisionSelectData:
		return "select-data"
	case DecisionFallback:
		return "fallback"
	case DecisionEvict:
		return "evict"
	case DecisionSteal:
		return "steal"
	case DecisionRequeue:
		return "requeue"
	}
	return "?"
}

// Decision is one recorded scheduler choice, explaining not only what was
// decided but why: how many candidates competed and what score won.
type Decision struct {
	// Kind classifies the decision; the fields below are set per kind.
	Kind DecisionKind
	// GPU is the accelerator the decision was made for (the thief, for
	// steals).
	GPU int
	// Data is the chosen data item: the loaded data for SelectData, the
	// eviction victim for Evict; taskgraph.NoData otherwise.
	Data taskgraph.DataID
	// Task is the task concerned: the picked task for Fallback, the
	// stolen task for Steal; taskgraph.NoTask otherwise.
	Task taskgraph.TaskID
	// Victim is the GPU stolen from (Steal only, -1 otherwise).
	Victim int
	// Candidates is how many alternatives competed: candidate data for
	// SelectData, evictable data for Evict.
	Candidates int
	// FreedTasks is the winning score of a SelectData decision — the
	// number of tasks computable once Data is loaded (nmax).
	FreedTasks int64
	// TasksPerByte is FreedTasks divided by the size of Data: the
	// bang-per-byte of the chosen load.
	TasksPerByte float64
	// FutureUses is, for Evict, how many buffered or planned tasks still
	// read the victim (0 for an ideal LUF victim).
	FutureUses int64
}

// String renders the decision as one log line.
func (d Decision) String() string {
	switch d.Kind {
	case DecisionSelectData:
		return fmt.Sprintf("gpu %d select-data %d: %d candidates, frees %d tasks, %.3g tasks/MB",
			d.GPU, d.Data, d.Candidates, d.FreedTasks, d.TasksPerByte*1e6)
	case DecisionFallback:
		return fmt.Sprintf("gpu %d fallback task %d: no data frees a task", d.GPU, d.Task)
	case DecisionEvict:
		return fmt.Sprintf("gpu %d evict data %d: %d candidates, %d future uses",
			d.GPU, d.Data, d.Candidates, d.FutureUses)
	case DecisionSteal:
		return fmt.Sprintf("gpu %d steals task %d from gpu %d", d.GPU, d.Task, d.Victim)
	case DecisionRequeue:
		if d.GPU < 0 {
			return fmt.Sprintf("task %d returned to the shared pool from dead gpu %d", d.Task, d.Victim)
		}
		return fmt.Sprintf("gpu %d takes over task %d from dead gpu %d", d.GPU, d.Task, d.Victim)
	}
	return "?"
}

// DecisionRecorder receives scheduler decisions as they are made. It is
// invoked synchronously from the scheduler hot path, so implementations
// should be cheap; recorders are nil by default and every call site is
// guarded, keeping the undecorated path allocation-free (pinned by
// TestDARTSPopAllocs).
type DecisionRecorder interface {
	Record(Decision)
}

// DecisionLogger is implemented by schedulers that can attach a
// DecisionRecorder; Strategy.WithRecorder uses it.
type DecisionLogger interface {
	SetDecisionRecorder(DecisionRecorder)
}

// DecisionLog is a DecisionRecorder writing one line per decision. It is
// not safe for concurrent use; attach it to a single run.
type DecisionLog struct {
	W io.Writer
	// N counts the decisions recorded.
	N int
}

// Record writes the decision as one line.
func (l *DecisionLog) Record(d Decision) {
	l.N++
	fmt.Fprintln(l.W, d.String())
}

// DecisionList is a DecisionRecorder collecting decisions in memory, for
// tests and small instrumented runs.
type DecisionList struct {
	Decisions []Decision
}

// Record appends the decision.
func (l *DecisionList) Record(d Decision) { l.Decisions = append(l.Decisions, d) }

// MultiRecorder fans one decision stream out to several recorders (e.g.
// a full DecisionLog next to a DigestRecorder in one instrumented run).
type MultiRecorder []DecisionRecorder

// Record forwards the decision to every recorder in order.
func (m MultiRecorder) Record(d Decision) {
	for _, r := range m {
		r.Record(d)
	}
}

// WithRecorder returns a copy of the strategy whose scheduler (and any
// paired eviction policy) reports its decisions to rec. Strategies that
// do not implement DecisionLogger are returned unchanged.
func (s Strategy) WithRecorder(rec DecisionRecorder) Strategy {
	inner := s.New
	s.New = func() (sim.Scheduler, sim.EvictionPolicy) {
		sched, pol := inner()
		if dl, ok := sched.(DecisionLogger); ok {
			dl.SetDecisionRecorder(rec)
		}
		return sched, pol
	}
	return s
}
