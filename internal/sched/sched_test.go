package sched_test

import (
	"testing"

	"memsched/internal/memory"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

// run executes inst under strat on a V100 platform with gpus GPUs,
// checking trace invariants.
func run(t *testing.T, strat sched.Strategy, inst *taskgraph.Instance, gpus int) *sim.Result {
	t.Helper()
	s, pol := strat.New()
	var ev sim.EvictionPolicy = pol
	if ev == nil {
		ev = memory.NewLRU()
	}
	res, err := sim.Run(inst, sim.Config{
		Platform:        platform.V100(gpus),
		Scheduler:       s,
		Eviction:        ev,
		Seed:            1,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatalf("%s: %v", strat.Label, err)
	}
	return res
}

func allStrategies() []sched.Strategy {
	return []sched.Strategy{
		sched.EagerStrategy(),
		sched.DMDARStrategy(),
		sched.HMetisRStrategy(true),
		sched.HMetisRStrategy(false),
		sched.MHFPStrategy(true),
		sched.MHFPStrategy(false),
		sched.DARTSStrategy(sched.DARTSOptions{}),
		sched.DARTSStrategy(sched.DARTSOptions{LUF: true}),
		sched.DARTSStrategy(sched.DARTSOptions{LUF: true, ThreeInputs: true}),
		sched.DARTSStrategy(sched.DARTSOptions{LUF: true, Opti: true}),
		sched.DARTSStrategy(sched.DARTSOptions{LUF: true, Opti: true, ThreeInputs: true}),
		sched.DARTSStrategy(sched.DARTSOptions{LUF: true, Threshold: 10}),
	}
}

// TestAllStrategiesAllWorkloads is the cross-product smoke test: every
// strategy must complete every workload shape on 1, 2 and 4 GPUs with a
// valid trace.
func TestAllStrategiesAllWorkloads(t *testing.T) {
	insts := []*taskgraph.Instance{
		workload.Matmul2D(8),
		workload.Matmul2DRandomized(8, 3),
		workload.Matmul3D(4),
		workload.Cholesky(6),
		workload.Sparse2D(20, 0.1, 5),
	}
	for _, strat := range allStrategies() {
		for _, inst := range insts {
			for _, gpus := range []int{1, 2, 4} {
				res := run(t, strat, inst, gpus)
				if res.GFlops <= 0 {
					t.Fatalf("%s on %s (%d GPUs): zero throughput", strat.Label, inst.Name(), gpus)
				}
			}
		}
	}
}

// TestAllStrategiesUnderMemoryPressure exercises eviction paths: at n=40
// one input matrix no longer fits a single 500 MB GPU.
func TestAllStrategiesUnderMemoryPressure(t *testing.T) {
	inst := workload.Matmul2D(40)
	for _, strat := range allStrategies() {
		res := run(t, strat, inst, 1)
		if res.Evictions == 0 {
			t.Errorf("%s: expected evictions at n=40 on one GPU", strat.Label)
		}
	}
}

// TestDARTSLUFBeatsPlainDARTSUnderPressure checks the paper's headline
// single-GPU result (Figures 3-4): under memory constraint, DARTS with the
// LUF eviction policy transfers less data than DARTS with LRU.
func TestDARTSLUFBeatsPlainDARTSUnderPressure(t *testing.T) {
	inst := workload.Matmul2D(50)
	plain := run(t, sched.DARTSStrategy(sched.DARTSOptions{}), inst, 1)
	luf := run(t, sched.DARTSStrategy(sched.DARTSOptions{LUF: true}), inst, 1)
	if luf.BytesTransferred >= plain.BytesTransferred {
		t.Fatalf("DARTS+LUF transferred %d B, plain DARTS %d B: LUF should transfer less",
			luf.BytesTransferred, plain.BytesTransferred)
	}
	if luf.GFlops <= plain.GFlops {
		t.Fatalf("DARTS+LUF %.0f GFlop/s vs plain DARTS %.0f GFlop/s: LUF should be faster",
			luf.GFlops, plain.GFlops)
	}
}

// TestEagerPathologyAppears checks that EAGER collapses once matrix B no
// longer fits (the LRU pathology of §V-B), while DARTS+LUF stays healthy.
func TestEagerPathologyAppears(t *testing.T) {
	inst := workload.Matmul2D(50)
	eager := run(t, sched.EagerStrategy(), inst, 1)
	luf := run(t, sched.DARTSStrategy(sched.DARTSOptions{LUF: true}), inst, 1)
	if float64(eager.BytesTransferred) < 1.5*float64(luf.BytesTransferred) {
		t.Fatalf("EAGER %d B vs DARTS+LUF %d B: pathological reloads missing",
			eager.BytesTransferred, luf.BytesTransferred)
	}
}

// TestLoadBalanceMultiGPU checks Objective 1: on a uniform workload no
// GPU should process more than twice the fair share of tasks.
func TestLoadBalanceMultiGPU(t *testing.T) {
	inst := workload.Matmul2D(16)
	for _, strat := range allStrategies() {
		res := run(t, strat, inst, 4)
		fair := inst.NumTasks() / 4
		for k, g := range res.GPU {
			if g.Tasks > 2*fair {
				t.Errorf("%s: gpu %d ran %d tasks (fair share %d)", strat.Label, k, g.Tasks, fair)
			}
		}
	}
}

// TestSchedulersDeterministic verifies that two runs with the same seed
// produce identical results.
func TestSchedulersDeterministic(t *testing.T) {
	inst := workload.Matmul2D(20)
	for _, strat := range allStrategies() {
		a := run(t, strat, inst, 2)
		b := run(t, strat, inst, 2)
		if a.Makespan != b.Makespan || a.Loads != b.Loads || a.Evictions != b.Evictions {
			t.Errorf("%s: nondeterministic (makespan %v vs %v, loads %d vs %d)",
				strat.Label, a.Makespan, b.Makespan, a.Loads, b.Loads)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := sched.ByName("darts+luf")
	if err != nil {
		t.Fatal(err)
	}
	if s.Label != "DARTS+LUF" {
		t.Fatalf("got %q", s.Label)
	}
	if _, err := sched.ByName("nope"); err == nil {
		t.Fatal("expected error for unknown strategy")
	}
}
