package sched_test

import (
	"testing"

	"memsched/internal/sched"
	"memsched/internal/workload"
)

// TestEagerBeladyBeatsEagerLRU checks the in-simulator counterpart of the
// offline property verified in internal/core: with the task order fixed
// (EAGER), the Belady oracle never transfers more than LRU, and on the
// pathological constrained 2D product it transfers strictly less.
func TestEagerBeladyBeatsEagerLRU(t *testing.T) {
	for _, n := range []int{36, 44, 50} {
		inst := workload.Matmul2D(n)
		lru := run(t, sched.EagerStrategy(), inst, 1)
		bel := run(t, sched.Strategy{Label: "EAGER+Belady", New: sched.NewEagerBeladyPair()}, inst, 1)
		if bel.BytesTransferred > lru.BytesTransferred {
			t.Fatalf("n=%d: Belady moved %d B > LRU %d B", n, bel.BytesTransferred, lru.BytesTransferred)
		}
		if n >= 44 && bel.BytesTransferred == lru.BytesTransferred {
			t.Errorf("n=%d: expected Belady to strictly beat LRU under constraint", n)
		}
	}
}

// TestEagerBeladyMatchesEagerOrder verifies the pair executes all tasks
// with the same totals as plain EAGER.
func TestEagerBeladyMatchesEagerOrder(t *testing.T) {
	inst := workload.Matmul2D(20)
	a := run(t, sched.EagerStrategy(), inst, 2)
	b := run(t, sched.Strategy{Label: "EAGER+Belady", New: sched.NewEagerBeladyPair()}, inst, 2)
	if a.TotalFlops != b.TotalFlops {
		t.Fatal("different work executed")
	}
	if b.GFlops < a.GFlops {
		t.Fatalf("Belady slower than LRU: %.0f vs %.0f GFlop/s", b.GFlops, a.GFlops)
	}
}
