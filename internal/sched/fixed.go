package sched

import (
	"fmt"

	"memsched/internal/core"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

// Fixed executes a precomputed schedule: each GPU processes exactly the
// tasks of its core.Schedule queue, in order. It bridges the offline
// model of §III and the runtime: an offline schedule (for example the
// brute-force optimum, or one produced by an external tool) can be
// replayed in the simulator with prefetching and a real eviction policy.
type Fixed struct {
	base
	schedule *core.Schedule
	next     []int
}

// NewFixed returns a Factory replaying schedule. Init panics if the
// schedule does not cover the instance or has fewer queues than GPUs.
func NewFixed(schedule *core.Schedule) Factory {
	return func() sim.Scheduler {
		return &Fixed{schedule: schedule}
	}
}

// Name returns "fixed".
func (s *Fixed) Name() string { return "fixed" }

// Init validates the schedule against the instance and platform.
func (s *Fixed) Init(inst *taskgraph.Instance, view sim.RuntimeView) {
	if err := s.schedule.Validate(inst); err != nil {
		panic(fmt.Sprintf("sched: fixed schedule invalid: %v", err))
	}
	if len(s.schedule.Order) > view.Platform().NumGPUs {
		panic(fmt.Sprintf("sched: fixed schedule uses %d GPUs, platform has %d",
			len(s.schedule.Order), view.Platform().NumGPUs))
	}
	s.next = make([]int, len(s.schedule.Order))
}

// PopTask returns the next scheduled task of gpu.
func (s *Fixed) PopTask(gpu int) (taskgraph.TaskID, bool) {
	if gpu >= len(s.schedule.Order) || s.next[gpu] >= len(s.schedule.Order[gpu]) {
		return taskgraph.NoTask, false
	}
	t := s.schedule.Order[gpu][s.next[gpu]]
	s.next[gpu]++
	return t, true
}
