package sched

import (
	"fmt"
	"slices"

	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

// DARTSOptions selects the DARTS variants evaluated in the paper.
type DARTSOptions struct {
	// LUF enables the Least Used in the Future eviction policy
	// (Algorithm 6) instead of LRU, including its revocation of planned
	// tasks whose data gets evicted.
	LUF bool
	// ThreeInputs enables the "3inputs" refinement of the else branch
	// (§V-E): when no single data load frees a task, prefer a data that
	// frees as many tasks as possible with one additional load.
	ThreeInputs bool
	// Opti enables the "OPTI" search cutoff (§V-F): stop the data scan
	// as soon as a data enabling at least one task is found.
	Opti bool
	// Threshold, when positive, bounds the number of candidate data
	// examined per decision (§V-C, "DARTS+LUF+threshold").
	Threshold int
}

func (o DARTSOptions) name() string {
	n := "DARTS"
	if o.LUF {
		n += "+LUF"
	}
	if o.Opti {
		n += "+OPTI"
	}
	if o.ThreeInputs {
		n += "-3inputs"
	}
	if o.Threshold > 0 {
		n += "+threshold"
	}
	return n
}

// DARTS implements Data-Aware Reactive Task Scheduling (§IV-D,
// Algorithm 5). It is fully dynamic: whenever a GPU requests a task, DARTS
// looks for the data whose loading would maximize the number of "free"
// tasks (tasks computable without any further load), reserves those tasks
// for the GPU in plannedTasks, and serves them one by one.
//
// DARTS must be created through NewDARTSPair so that its LUF eviction
// policy (when enabled) shares its state.
type DARTS struct {
	opts DARTSOptions
	inst *taskgraph.Instance
	view sim.RuntimeView

	// pool is the set of unprocessed tasks not yet reserved by any GPU.
	poolSlice []taskgraph.TaskID
	poolIndex []int32 // task -> index in poolSlice, -1 if absent

	// activeDeg[d] counts pool tasks reading d; singles[d] counts pool
	// tasks whose only input is d, with singleList enumerating the data
	// whose count is positive (swap-remove, singleIx holds positions) so
	// a decision walks only live entries.
	activeDeg  []int64
	singles    []int64
	singleList []taskgraph.DataID
	singleIx   []int32

	// loaded is DARTS' per-GPU bookkeeping: the complement of the
	// paper's dataNotInMem_k. A data is "loaded" once selected for or
	// transferred to the GPU.
	loaded      [][]bool // per GPU, indexed by DataID
	loadedCount []int
	loadedList  [][]taskgraph.DataID // iteration order; may contain stale entries

	// sumDeg[k] = sum of activeDeg over data still in dataNotInMem_k:
	// the cost of the naive full scan of Algorithm 5 line 4, charged to
	// the simulated clock.
	sumDeg []int64

	planned [][]taskgraph.TaskID // plannedTasks_k
	buffer  [][]taskgraph.TaskID // taskBuffer_k: popped, not completed

	visited []int32 // per-task epoch marks for frontier scans
	epoch   int32

	// missing[k][t] counts inputs of t not loaded on GPU k, maintained
	// incrementally by markLoaded/markUnloaded. From it, ready1Fix keeps
	// the aggregate the frontier scan of selectData computes: cnt1[k][d]
	// is the number of multi-input pool tasks on k whose one missing
	// input is d, and cand1[k] lists the data with cnt1 > 0 (swap-remove,
	// cand1Ix holds positions). miss1[k][t] caches which input is the
	// missing one while t is in the set (NoData when it is not) — valid
	// because membership changes one load/unload/pool step at a time, so
	// the singleton can only change by leaving and re-entering. A
	// decision then reads the candidates directly instead of walking
	// every consumer of every loaded data: the candidate sets and counts
	// are identical (both sides sort before use), only the enumeration
	// cost changes.
	missing [][]int32
	miss1   [][]taskgraph.DataID
	cnt1    [][]int64
	cand1   [][]taskgraph.DataID
	cand1Ix [][]int32
	multiIn []bool // task has >= 2 inputs

	// LUF.Victim scratch: per-data use counts over taskBuffer and
	// plannedTasks, epoch-marked so a Victim call touches only the data
	// its scan reads (the naive version allocated three maps per call).
	lufMark    []int32
	lufNb      []int64
	lufNp      []int64
	lufNextUse []int32

	// Per-decision scratch, reused across pops. The naive implementation
	// allocated a map plus a sort.Slice closure on every PopTask; these
	// arrays use the same epoch trick as visited so a pop only touches
	// the data it actually examines. candList holds the data touched this
	// decision; sorting it ascending reproduces the map-key sort of the
	// naive version byte for byte (counts are order-independent sums, and
	// the threshold shuffle and tie-break consume the RNG identically on
	// the same sorted candidate order).
	candCount []int64            // per-data freed-task counts
	candMark  []int32            // epoch marks for candCount
	candList  []taskgraph.DataID // data touched this decision
	freeList  []taskgraph.TaskID // fillPlanned scratch

	// rec receives the decision log when attached via
	// Strategy.WithRecorder; nil (and free) by default.
	rec DecisionRecorder
}

// SetDecisionRecorder attaches rec to this scheduler and, through the
// shared state, to its paired LUF policy.
func (s *DARTS) SetDecisionRecorder(rec DecisionRecorder) { s.rec = rec }

// NewDARTSPair returns a builder producing a fresh DARTS scheduler and its
// eviction policy for one run. When opts.LUF is false the returned policy
// is nil and the caller should use LRU, matching the paper's plain DARTS.
func NewDARTSPair(opts DARTSOptions) func() (sim.Scheduler, sim.EvictionPolicy) {
	return func() (sim.Scheduler, sim.EvictionPolicy) {
		d := &DARTS{opts: opts}
		if opts.LUF {
			return d, &LUF{d: d}
		}
		return d, nil
	}
}

// Name returns the variant name, e.g. "DARTS+LUF-3inputs".
func (s *DARTS) Name() string { return s.opts.name() }

// Init fills the task pool and the per-GPU bookkeeping.
func (s *DARTS) Init(inst *taskgraph.Instance, view sim.RuntimeView) {
	s.inst = inst
	s.view = view
	k := view.Platform().NumGPUs
	m := inst.NumTasks()
	n := inst.NumData()

	s.poolSlice = make([]taskgraph.TaskID, m)
	s.poolIndex = make([]int32, m)
	for i := 0; i < m; i++ {
		s.poolSlice[i] = taskgraph.TaskID(i)
		s.poolIndex[i] = int32(i)
	}
	s.activeDeg = make([]int64, n)
	s.singles = make([]int64, n)
	s.singleList = s.singleList[:0]
	s.singleIx = make([]int32, n)
	for d := range s.singleIx {
		s.singleIx[d] = -1
	}
	for _, t := range inst.Tasks() {
		for _, d := range t.Inputs {
			s.activeDeg[d]++
		}
		if len(t.Inputs) == 1 {
			s.singleBump(t.Inputs[0], 1)
		}
	}
	var totalDeg int64
	for _, deg := range s.activeDeg {
		totalDeg += deg
	}
	s.loaded = make([][]bool, k)
	s.loadedCount = make([]int, k)
	s.loadedList = make([][]taskgraph.DataID, k)
	s.sumDeg = make([]int64, k)
	s.planned = make([][]taskgraph.TaskID, k)
	s.buffer = make([][]taskgraph.TaskID, k)
	for g := 0; g < k; g++ {
		s.loaded[g] = make([]bool, n)
		s.sumDeg[g] = totalDeg
	}
	s.visited = make([]int32, m)
	s.candCount = make([]int64, n)
	s.candMark = make([]int32, n)
	s.candList = make([]taskgraph.DataID, 0, 64)
	s.multiIn = make([]bool, m)
	for t := 0; t < m; t++ {
		s.multiIn[t] = len(inst.Inputs(taskgraph.TaskID(t))) >= 2
	}
	s.missing = make([][]int32, k)
	s.miss1 = make([][]taskgraph.DataID, k)
	s.cnt1 = make([][]int64, k)
	s.cand1 = make([][]taskgraph.DataID, k)
	s.cand1Ix = make([][]int32, k)
	for g := 0; g < k; g++ {
		s.missing[g] = make([]int32, m)
		s.miss1[g] = make([]taskgraph.DataID, m)
		for t := 0; t < m; t++ {
			s.missing[g][t] = int32(len(inst.Inputs(taskgraph.TaskID(t))))
			s.miss1[g][t] = taskgraph.NoData
		}
		s.cnt1[g] = make([]int64, n)
		s.cand1Ix[g] = make([]int32, n)
		for d := range s.cand1Ix[g] {
			s.cand1Ix[g][d] = -1
		}
	}
	s.lufMark = make([]int32, n)
	s.lufNb = make([]int64, n)
	s.lufNp = make([]int64, n)
	s.lufNextUse = make([]int32, n)
}

// ready1Fix reconciles t's contribution to cnt1/cand1 on GPU g with its
// current state: a multi-input pool task with exactly one missing input
// counts toward that input's candidate tally.
func (s *DARTS) ready1Fix(g int, t taskgraph.TaskID) {
	want := s.poolIndex[t] >= 0 && s.missing[g][t] == 1 && s.multiIn[t]
	cur := s.miss1[g][t]
	if want == (cur != taskgraph.NoData) {
		return
	}
	if want {
		d := taskgraph.NoData
		for _, in := range s.inst.Inputs(t) {
			if !s.loaded[g][in] {
				d = in
				break
			}
		}
		s.miss1[g][t] = d
		if s.cnt1[g][d]++; s.cnt1[g][d] == 1 {
			s.cand1Ix[g][d] = int32(len(s.cand1[g]))
			s.cand1[g] = append(s.cand1[g], d)
		}
		return
	}
	d := cur
	s.miss1[g][t] = taskgraph.NoData
	if s.cnt1[g][d]--; s.cnt1[g][d] == 0 {
		ix := s.cand1Ix[g][d]
		last := len(s.cand1[g]) - 1
		moved := s.cand1[g][last]
		s.cand1[g][ix] = moved
		s.cand1Ix[g][moved] = ix
		s.cand1[g] = s.cand1[g][:last]
		s.cand1Ix[g][d] = -1
	}
}

// bump adds c to the scratch count of d for the current decision epoch,
// registering d in candList on first touch.
func (s *DARTS) bump(d taskgraph.DataID, c int64) {
	if s.candMark[d] != s.epoch {
		s.candMark[d] = s.epoch
		s.candCount[d] = 0
		s.candList = append(s.candList, d)
	}
	s.candCount[d] += c
}

func (s *DARTS) inPool(t taskgraph.TaskID) bool { return s.poolIndex[t] >= 0 }

// removeFromPool takes t out of the shared pool, updating degree counters.
func (s *DARTS) removeFromPool(t taskgraph.TaskID) {
	i := s.poolIndex[t]
	if i < 0 {
		panic(fmt.Sprintf("sched: DARTS task %d not in pool", t))
	}
	last := len(s.poolSlice) - 1
	moved := s.poolSlice[last]
	s.poolSlice[i] = moved
	s.poolIndex[moved] = i
	s.poolSlice = s.poolSlice[:last]
	s.poolIndex[t] = -1
	for g := range s.loaded {
		s.ready1Fix(g, t)
	}
	in := s.inst.Inputs(t)
	for _, d := range in {
		s.activeDeg[d]--
		for g := range s.loaded {
			if !s.loaded[g][d] {
				s.sumDeg[g]--
			}
		}
	}
	if len(in) == 1 {
		s.singleBump(in[0], -1)
	}
}

// singleBump adjusts the single-input-task count of d, maintaining the
// swap-remove enumeration list.
func (s *DARTS) singleBump(d taskgraph.DataID, by int64) {
	was := s.singles[d]
	s.singles[d] = was + by
	if was == 0 && by > 0 {
		s.singleIx[d] = int32(len(s.singleList))
		s.singleList = append(s.singleList, d)
	} else if was+by == 0 && by < 0 {
		ix := s.singleIx[d]
		last := len(s.singleList) - 1
		moved := s.singleList[last]
		s.singleList[ix] = moved
		s.singleIx[moved] = ix
		s.singleList = s.singleList[:last]
		s.singleIx[d] = -1
	}
}

// returnToPool puts a revoked planned task back in the shared pool.
func (s *DARTS) returnToPool(t taskgraph.TaskID) {
	if s.poolIndex[t] >= 0 {
		return
	}
	s.poolIndex[t] = int32(len(s.poolSlice))
	s.poolSlice = append(s.poolSlice, t)
	for g := range s.loaded {
		s.ready1Fix(g, t)
	}
	in := s.inst.Inputs(t)
	for _, d := range in {
		s.activeDeg[d]++
		for g := range s.loaded {
			if !s.loaded[g][d] {
				s.sumDeg[g]++
			}
		}
	}
	if len(in) == 1 {
		s.singleBump(in[0], 1)
	}
}

// markLoaded records that gpu considers d loaded (selected or resident).
func (s *DARTS) markLoaded(gpu int, d taskgraph.DataID) {
	if s.loaded[gpu][d] {
		return
	}
	s.loaded[gpu][d] = true
	s.loadedCount[gpu]++
	s.loadedList[gpu] = append(s.loadedList[gpu], d)
	s.sumDeg[gpu] -= s.activeDeg[d]
	for _, t := range s.inst.Consumers(d) {
		m := s.missing[gpu][t] - 1
		s.missing[gpu][t] = m
		// Membership can only change crossing missing==1: enter at m==1
		// (was 2), leave at m==0 (was 1).
		if m <= 1 {
			s.ready1Fix(gpu, t)
		}
	}
}

// markUnloaded records that d left the memory of gpu.
func (s *DARTS) markUnloaded(gpu int, d taskgraph.DataID) {
	if !s.loaded[gpu][d] {
		return
	}
	s.loaded[gpu][d] = false
	s.loadedCount[gpu]--
	s.sumDeg[gpu] += s.activeDeg[d]
	for _, t := range s.inst.Consumers(d) {
		m := s.missing[gpu][t] + 1
		s.missing[gpu][t] = m
		// Enter at m==1 (was 0), leave at m==2 (was 1).
		if m <= 2 {
			s.ready1Fix(gpu, t)
		}
	}
	// loadedList is compacted lazily during scans.
}

// missingInputs returns how many inputs of t are not loaded in the DARTS
// view of gpu, and one of the missing data items.
func (s *DARTS) missingInputs(gpu int, t taskgraph.TaskID) (int, taskgraph.DataID) {
	missing := 0
	miss := taskgraph.NoData
	for _, d := range s.inst.Inputs(t) {
		if !s.loaded[gpu][d] {
			missing++
			miss = d
		}
	}
	return missing, miss
}

// PopTask implements Algorithm 5 for GPU gpu.
func (s *DARTS) PopTask(gpu int) (taskgraph.TaskID, bool) {
	if len(s.planned[gpu]) > 0 {
		t := s.planned[gpu][0]
		s.planned[gpu] = s.planned[gpu][1:]
		s.buffer[gpu] = append(s.buffer[gpu], t)
		s.view.Charge(1)
		return t, true
	}
	if len(s.poolSlice) == 0 {
		return taskgraph.NoTask, false
	}
	if dopt, ok := s.selectData(gpu); ok {
		s.fillPlanned(gpu, dopt)
		t := s.planned[gpu][0]
		s.planned[gpu] = s.planned[gpu][1:]
		s.buffer[gpu] = append(s.buffer[gpu], t)
		return t, true
	}
	// else branch (line 13): no single load frees a task.
	var t taskgraph.TaskID
	if s.opts.ThreeInputs {
		t = s.pickThreeInputs(gpu)
	} else {
		t = taskgraph.NoTask
	}
	if t == taskgraph.NoTask {
		t = s.poolSlice[s.view.Rand().Intn(len(s.poolSlice))]
		s.view.Charge(1)
	}
	if s.rec != nil {
		s.rec.Record(Decision{Kind: DecisionFallback, GPU: gpu, Task: t,
			Data: taskgraph.NoData, Victim: -1})
	}
	s.removeFromPool(t)
	for _, d := range s.inst.Inputs(t) {
		s.markLoaded(gpu, d)
	}
	s.buffer[gpu] = append(s.buffer[gpu], t)
	return t, true
}

// compactLoadedList drops stale entries from the loaded iteration order.
func (s *DARTS) compactLoadedList(gpu int) []taskgraph.DataID {
	list := s.loadedList[gpu]
	if len(list) <= 2*s.loadedCount[gpu] {
		return list
	}
	out := list[:0]
	for _, d := range list {
		if s.loaded[gpu][d] {
			out = append(out, d)
		}
	}
	s.loadedList[gpu] = out
	return out
}

// selectData performs lines 4-11 of Algorithm 5: find the data of
// dataNotInMem_gpu maximizing the number of freed tasks. It returns
// ok=false when no data frees any task (nmax == 0).
//
// The candidate set is computed through the frontier of loaded data
// (every data with n(D) > 0 is a missing input of a pool task whose other
// inputs are loaded, or the sole input of a single-input task), which is
// equivalent to the naive scan of the paper's pseudo-code. The cost
// charged to the simulated clock is nevertheless the naive scan's
// (sumDeg), since that is what the paper's implementation pays — its
// variants OPTI and Threshold exist precisely to cut it.
func (s *DARTS) selectData(gpu int) (taskgraph.DataID, bool) {
	s.epoch++
	s.candList = s.candList[:0]
	// Single-input tasks are free as soon as their data loads.
	for _, d := range s.singleList {
		if !s.loaded[gpu][d] {
			s.bump(d, s.singles[d])
		}
	}
	var scanOps int64
	if stopEarly := s.opts.Opti; stopEarly {
		// OPTI's early stop depends on the scan order (it keeps the first
		// data enabling a task), and its charge on the work actually done,
		// so it walks the frontier of loaded data exactly as the paper's
		// pseudo-code does.
		list := s.compactLoadedList(gpu)
	scan:
		for li := range list {
			// OPTI stops at the first data enabling a task, so scan from
			// the most recently loaded data: the first hit then extends the
			// locality the GPU already built, instead of resurrecting the
			// neighborhood of its oldest data.
			r := list[len(list)-1-li]
			if !s.loaded[gpu][r] {
				continue
			}
			for _, t := range s.inst.Consumers(r) {
				if !s.inPool(t) || s.visited[t] == s.epoch {
					continue
				}
				s.visited[t] = s.epoch
				scanOps += int64(len(s.inst.Inputs(t)))
				missing, miss := s.missingInputs(gpu, t)
				if missing == 1 {
					s.bump(miss, 1)
					break scan
				}
			}
		}
	} else {
		// The frontier scan bumps, once each, exactly the multi-input pool
		// tasks with one missing input (such a task has a loaded input, so
		// it is a consumer of some loaded data, and the visited marks
		// deduplicate). cnt1/cand1 maintain those tallies incrementally,
		// so a decision costs O(candidates) instead of O(loaded x
		// consumers). The charge below stays the naive scan's (sumDeg):
		// that is what the paper's implementation pays.
		for _, d := range s.cand1[gpu] {
			s.bump(d, s.cnt1[gpu][d])
		}
	}
	if len(s.candList) == 0 {
		s.view.Charge(s.scanCharge(gpu, scanOps))
		return taskgraph.NoData, false
	}
	keys := s.candList
	if len(keys)*4 >= len(s.candMark) {
		// Dense candidate set: rebuilding the list by an ascending scan
		// of the epoch marks yields exactly the sorted order a comparison
		// sort would, in O(data) instead of O(c log c).
		keys = keys[:0]
		for d := range s.candMark {
			if s.candMark[d] == s.epoch {
				keys = append(keys, taskgraph.DataID(d))
			}
		}
		s.candList = keys
	} else {
		slices.Sort(keys)
	}
	if s.opts.Threshold > 0 && len(keys) > s.opts.Threshold {
		// Examine only Threshold candidates, chosen at random as the
		// paper's bounded scan would encounter them.
		rng := s.view.Rand()
		rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		keys = keys[:s.opts.Threshold]
	}
	// nmax and the candidate set (line 6-8).
	var nmax int64
	for _, d := range keys {
		if s.candCount[d] > nmax {
			nmax = s.candCount[d]
		}
	}
	// Among data freeing nmax tasks, prefer the one useful to the most
	// unprocessed tasks, breaking ties randomly (line 9).
	best := taskgraph.NoData
	var bestDeg int64 = -1
	ties := 0
	rng := s.view.Rand()
	for _, d := range keys {
		if s.candCount[d] != nmax {
			continue
		}
		switch deg := s.activeDeg[d]; {
		case deg > bestDeg:
			best, bestDeg, ties = d, deg, 1
		case deg == bestDeg:
			ties++
			if rng.Intn(ties) == 0 {
				best = d
			}
		}
	}
	s.view.Charge(s.scanCharge(gpu, scanOps))
	if s.rec != nil {
		size := s.inst.Data(best).Size
		dec := Decision{Kind: DecisionSelectData, GPU: gpu, Data: best,
			Task: taskgraph.NoTask, Victim: -1,
			Candidates: len(keys), FreedTasks: nmax}
		if size > 0 {
			dec.TasksPerByte = float64(nmax) / float64(size)
		}
		s.rec.Record(dec)
	}
	return best, true
}

// scanCharge converts one selectData scan into charged operations,
// following the paper's implementation costs: the plain algorithm scans
// all of dataNotInMem (sumDeg), OPTI pays only the work actually done
// before stopping, and Threshold pays the average candidate cost times
// the bound.
func (s *DARTS) scanCharge(gpu int, actualOps int64) int64 {
	switch {
	case s.opts.Opti:
		return actualOps + 1
	case s.opts.Threshold > 0:
		notInMem := int64(s.inst.NumData() - s.loadedCount[gpu])
		if notInMem <= 0 {
			return actualOps + 1
		}
		avg := s.sumDeg[gpu] / notInMem
		charge := int64(s.opts.Threshold) * (avg + 1)
		if charge > s.sumDeg[gpu] {
			charge = s.sumDeg[gpu]
		}
		return charge + 1
	default:
		return s.sumDeg[gpu] + 1
	}
}

// fillPlanned reserves for gpu every pool task depending only on dopt and
// already loaded data (line 10), and marks dopt as loaded (line 11).
func (s *DARTS) fillPlanned(gpu int, dopt taskgraph.DataID) {
	free := s.freeList[:0]
	for _, t := range s.inst.Consumers(dopt) {
		// dopt is unloaded (selectData only proposes missing data), so a
		// pool consumer is free exactly when dopt is its one missing input.
		if s.inPool(t) && s.missing[gpu][t] == 1 {
			free = append(free, t)
		}
	}
	if len(free) == 0 {
		// Races with revocation can empty the free set; fall back to any
		// pool consumer of dopt, or a random pool task.
		for _, t := range s.inst.Consumers(dopt) {
			if s.inPool(t) {
				free = append(free, t)
				break
			}
		}
		if len(free) == 0 {
			free = append(free, s.poolSlice[s.view.Rand().Intn(len(s.poolSlice))])
		}
	}
	for _, t := range free {
		s.removeFromPool(t)
	}
	s.planned[gpu] = append(s.planned[gpu], free...)
	s.freeList = free[:0]
	s.markLoaded(gpu, dopt)
}

// pickThreeInputs implements the 3inputs else branch: find the data D
// maximizing the number of pool tasks that miss exactly D and one other
// unloaded data on this GPU, and return one such task (NoTask if none).
func (s *DARTS) pickThreeInputs(gpu int) taskgraph.TaskID {
	s.epoch++
	s.candList = s.candList[:0]
	var ops int64
	for _, t := range s.poolSlice {
		ops += int64(len(s.inst.Inputs(t)))
		missing := 0
		var m1, m2 taskgraph.DataID = taskgraph.NoData, taskgraph.NoData
		for _, d := range s.inst.Inputs(t) {
			if !s.loaded[gpu][d] {
				missing++
				if missing == 1 {
					m1 = d
				} else if missing == 2 {
					m2 = d
				} else {
					break
				}
			}
		}
		if missing == 2 {
			s.bump(m1, 1)
			s.bump(m2, 1)
		}
	}
	s.view.Charge(ops)
	if len(s.candList) == 0 {
		return taskgraph.NoTask
	}
	keys := s.candList
	slices.Sort(keys)
	best := keys[0]
	for _, d := range keys[1:] {
		if s.candCount[d] > s.candCount[best] {
			best = d
		}
	}
	// Return the first pool task missing exactly best and one other data.
	for _, t := range s.inst.Consumers(best) {
		if !s.inPool(t) {
			continue
		}
		if missing, _ := s.missingInputs(gpu, t); missing == 2 {
			return t
		}
	}
	return taskgraph.NoTask
}

// TaskDone removes t from taskBuffer_gpu.
func (s *DARTS) TaskDone(gpu int, t taskgraph.TaskID) {
	buf := s.buffer[gpu]
	for i := range buf {
		if buf[i] == t {
			s.buffer[gpu] = append(buf[:i], buf[i+1:]...)
			return
		}
	}
}

// DataLoaded keeps the DARTS view in sync with data loaded by the runtime
// (for example reloads of evicted inputs of buffered tasks).
func (s *DARTS) DataLoaded(gpu int, d taskgraph.DataID) { s.markLoaded(gpu, d) }

// DataEvicted pushes d back to dataNotInMem_gpu. Under LUF it also
// removes the planned tasks depending on d (Algorithm 6 line 8), putting
// them back in the shared pool.
func (s *DARTS) DataEvicted(gpu int, d taskgraph.DataID) {
	s.markUnloaded(gpu, d)
	if !s.opts.LUF {
		return
	}
	kept := s.planned[gpu][:0]
	for _, t := range s.planned[gpu] {
		uses := false
		for _, in := range s.inst.Inputs(t) {
			if in == d {
				uses = true
				break
			}
		}
		if uses {
			s.returnToPool(t)
		} else {
			kept = append(kept, t)
		}
	}
	s.planned[gpu] = kept
}

// GPUDropped returns everything the dead GPU owned to the shared pool:
// its planned tasks (never handed to the runtime) and the requeued tasks
// the engine got back (killed or buffered), each recorded as a requeue
// decision. Survivors re-plan them through the normal selectData path.
// The engine has already reported the lost replicas via DataEvicted;
// the sweep below only clears data selected but not yet resident
// (markUnloaded is a no-op on anything already unloaded).
func (s *DARTS) GPUDropped(gpu int, requeue []taskgraph.TaskID) {
	for _, t := range s.planned[gpu] {
		s.returnToPool(t)
	}
	s.planned[gpu] = nil
	for _, t := range requeue {
		s.returnToPool(t)
		if s.rec != nil {
			s.rec.Record(Decision{Kind: DecisionRequeue, GPU: -1, Victim: gpu,
				Task: t, Data: taskgraph.NoData})
		}
	}
	s.buffer[gpu] = nil
	for _, d := range s.loadedList[gpu] {
		s.markUnloaded(gpu, d)
	}
	s.loadedList[gpu] = nil
}

// LUF is the Least Used in the Future eviction policy (Algorithm 6). It
// reads the plannedTasks and taskBuffer of its paired DARTS scheduler:
// prefer evicting a data used by no in-flight task and by the fewest
// planned tasks; otherwise apply Belady's rule to the in-flight tasks.
type LUF struct {
	d *DARTS
}

// Name returns "LUF".
func (p *LUF) Name() string { return "LUF" }

// Init is a no-op; the paired DARTS scheduler owns all state.
func (p *LUF) Init(inst *taskgraph.Instance, view sim.RuntimeView) {}

// Loaded is a no-op.
func (p *LUF) Loaded(gpu int, d taskgraph.DataID) {}

// Used is a no-op.
func (p *LUF) Used(gpu int, d taskgraph.DataID) {}

// Victim implements Algorithm 6. The per-data use counts live in
// epoch-marked scratch arrays of the paired scheduler (data whose mark is
// stale counts as zero), so a call allocates nothing — the naive version
// built three maps per eviction.
func (p *LUF) Victim(gpu int, candidates []taskgraph.DataID) taskgraph.DataID {
	s := p.d
	s.epoch++
	touch := func(d taskgraph.DataID, i int32) {
		if s.lufMark[d] != s.epoch {
			s.lufMark[d] = s.epoch
			s.lufNb[d] = 0
			s.lufNp[d] = 0
			s.lufNextUse[d] = i
		}
	}
	// nb(D): first (and count of) uses in taskBuffer, in execution order.
	for i, t := range s.buffer[gpu] {
		for _, d := range s.inst.Inputs(t) {
			touch(d, int32(i))
			s.lufNb[d]++
		}
	}
	// np(D): uses in plannedTasks.
	for _, t := range s.planned[gpu] {
		for _, d := range s.inst.Inputs(t) {
			touch(d, 0)
			s.lufNp[d]++
		}
	}
	nb := func(d taskgraph.DataID) int64 {
		if s.lufMark[d] != s.epoch {
			return 0
		}
		return s.lufNb[d]
	}
	np := func(d taskgraph.DataID) int64 {
		if s.lufMark[d] != s.epoch {
			return 0
		}
		return s.lufNp[d]
	}
	best := taskgraph.NoData
	var bestNp int64
	for _, d := range candidates {
		if nb(d) != 0 {
			continue
		}
		if best == taskgraph.NoData || np(d) < bestNp {
			best, bestNp = d, np(d)
		}
	}
	if best != taskgraph.NoData {
		if s.rec != nil {
			s.rec.Record(Decision{Kind: DecisionEvict, GPU: gpu, Data: best,
				Task: taskgraph.NoTask, Victim: -1,
				Candidates: len(candidates), FutureUses: np(best)})
		}
		return best
	}
	// All candidates are used by in-flight tasks: Belady on taskBuffer.
	// Every candidate here has nb != 0, so its nextUse mark is current.
	far := candidates[0]
	farUse := s.lufNextUse[far]
	for _, d := range candidates[1:] {
		if s.lufNextUse[d] > farUse {
			far, farUse = d, s.lufNextUse[d]
		}
	}
	if s.rec != nil {
		s.rec.Record(Decision{Kind: DecisionEvict, GPU: gpu, Data: far,
			Task: taskgraph.NoTask, Victim: -1,
			Candidates: len(candidates), FutureUses: nb(far) + np(far)})
	}
	return far
}

// Evicted is a no-op; the paired scheduler handles eviction bookkeeping in
// its DataEvicted hook.
func (p *LUF) Evicted(gpu int, d taskgraph.DataID) {}

var (
	_ sim.Scheduler      = (*DARTS)(nil)
	_ sim.EvictionPolicy = (*LUF)(nil)
)
