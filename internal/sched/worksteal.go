package sched

import (
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

// WorkStealing is a locality-aware work-stealing scheduler in the spirit
// of XKaapi's strategies, which the paper's related work cites as the
// main alternative school ("efforts have been made to favor data locality
// by implementing and extending ideas from theoretical studies on data
// locality for work stealing", §II-c). Tasks are dealt to per-GPU deques
// in contiguous submission blocks; owners serve their own deque with the
// Ready rule, and an idle GPU steals the tasks whose inputs are most
// available in its own memory from the most loaded victim.
//
// It is the "locality by stealing" baseline to the paper's "locality by
// partitioning or planning" strategies.
type WorkStealing struct {
	base
	readyWindow int
	stealWindow int
	queues      [][]taskgraph.TaskID
	view        sim.RuntimeView
	rec         DecisionRecorder
}

// SetDecisionRecorder attaches a recorder logging each steal.
func (s *WorkStealing) SetDecisionRecorder(rec DecisionRecorder) { s.rec = rec }

// NewWorkStealing returns a Factory for the work-stealing baseline.
// readyWindow bounds the owner's Ready scan (0 selects
// DefaultReadyWindow); stealWindow bounds how many victim tasks a thief
// examines for locality (0 selects 64).
func NewWorkStealing(readyWindow, stealWindow int) Factory {
	if readyWindow == 0 {
		readyWindow = DefaultReadyWindow
	}
	if stealWindow == 0 {
		stealWindow = 64
	}
	return func() sim.Scheduler {
		return &WorkStealing{readyWindow: readyWindow, stealWindow: stealWindow}
	}
}

// Name returns "WS-locality".
func (s *WorkStealing) Name() string { return "WS-locality" }

// Init deals the tasks to the GPUs in contiguous submission blocks, the
// natural initial split of a work-stealing runtime.
func (s *WorkStealing) Init(inst *taskgraph.Instance, view sim.RuntimeView) {
	s.view = view
	k := view.Platform().NumGPUs
	s.queues = make([][]taskgraph.TaskID, k)
	m := inst.NumTasks()
	for g := 0; g < k; g++ {
		lo := g * m / k
		hi := (g + 1) * m / k
		q := make([]taskgraph.TaskID, 0, hi-lo)
		for t := lo; t < hi; t++ {
			q = append(q, taskgraph.TaskID(t))
		}
		s.queues[g] = q
	}
}

// PopTask serves the local deque with Ready; when empty it steals the
// locality-best tasks from the most loaded victim.
func (s *WorkStealing) PopTask(gpu int) (taskgraph.TaskID, bool) {
	if len(s.queues[gpu]) == 0 && !s.steal(gpu) {
		return taskgraph.NoTask, false
	}
	i := readyPick(s.view, gpu, s.queues[gpu], s.readyWindow, false)
	if i < 0 {
		return taskgraph.NoTask, false
	}
	t := s.queues[gpu][i]
	s.queues[gpu] = removeAt(s.queues[gpu], i)
	return t, true
}

// GPUDropped rebalances the dead GPU's deque onto the survivors,
// recording one requeue decision per task; subsequent steals keep
// rebalancing as usual.
func (s *WorkStealing) GPUDropped(gpu int, requeue []taskgraph.TaskID) {
	requeueToAlive(s.view, s.queues, gpu, requeue, s.rec)
}

// steal moves up to half of the most loaded victim's tail into the
// thief's deque, preferring (within a bounded scan) the tasks whose
// inputs are already available on the thief.
func (s *WorkStealing) steal(thief int) bool {
	victim, load := -1, 1
	for g := range s.queues {
		if g != thief && len(s.queues[g]) > load {
			victim, load = g, len(s.queues[g])
		}
	}
	if victim < 0 {
		return false
	}
	want := load / 2
	q := s.queues[victim]
	// Score the tail window by availability on the thief.
	scan := s.stealWindow
	if scan > len(q) {
		scan = len(q)
	}
	type scored struct {
		idx     int
		missing int
	}
	cands := make([]scored, 0, scan)
	var ops int64
	for i := len(q) - scan; i < len(q); i++ {
		cands = append(cands, scored{idx: i, missing: s.view.MissingInputs(thief, q[i])})
		ops += int64(len(s.view.Instance().Inputs(q[i])))
	}
	s.view.Charge(ops)
	// Selection by missing count, stable on index: move the best `want`.
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			if cands[j].missing < cands[i].missing {
				cands[i], cands[j] = cands[j], cands[i]
			}
		}
	}
	if want > len(cands) {
		want = len(cands)
	}
	take := make(map[int]bool, want)
	for _, c := range cands[:want] {
		take[c.idx] = true
	}
	var stolen, kept []taskgraph.TaskID
	for i, t := range q {
		if take[i] {
			stolen = append(stolen, t)
			if s.rec != nil {
				s.rec.Record(Decision{Kind: DecisionSteal, GPU: thief, Victim: victim,
					Task: t, Data: taskgraph.NoData})
			}
		} else {
			kept = append(kept, t)
		}
	}
	s.queues[victim] = kept
	s.queues[thief] = append(s.queues[thief], stolen...)
	return len(stolen) > 0
}

// WorkStealingStrategy wraps NewWorkStealing as a Strategy.
func WorkStealingStrategy() Strategy {
	return simple("WS-locality", NewWorkStealing(0, 0))
}
