package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"memsched/internal/platform"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

// fakeView is a minimal RuntimeView for white-box scheduler tests.
type fakeView struct {
	inst     *taskgraph.Instance
	plat     platform.Platform
	resident [][]bool
	arriving [][]bool
	inflight [][]taskgraph.TaskID
	rng      *rand.Rand
	charged  int64
	static   int64
}

func newFakeView(inst *taskgraph.Instance, gpus int) *fakeView {
	v := &fakeView{
		inst: inst,
		plat: platform.V100(gpus),
		rng:  rand.New(rand.NewSource(1)),
	}
	v.resident = make([][]bool, gpus)
	v.arriving = make([][]bool, gpus)
	v.inflight = make([][]taskgraph.TaskID, gpus)
	for k := range v.resident {
		v.resident[k] = make([]bool, inst.NumData())
		v.arriving[k] = make([]bool, inst.NumData())
	}
	return v
}

func (v *fakeView) Instance() *taskgraph.Instance           { return v.inst }
func (v *fakeView) Platform() platform.Platform             { return v.plat }
func (v *fakeView) Now() time.Duration                      { return 0 }
func (v *fakeView) Alive(g int) bool                        { return true }
func (v *fakeView) Resident(g int, d taskgraph.DataID) bool { return v.resident[g][d] }
func (v *fakeView) Arriving(g int, d taskgraph.DataID) bool { return v.arriving[g][d] }
func (v *fakeView) Available(g int, d taskgraph.DataID) bool {
	return v.resident[g][d] || v.arriving[g][d]
}
func (v *fakeView) MissingInputs(g int, t taskgraph.TaskID) int {
	n := 0
	for _, d := range v.inst.Inputs(t) {
		if !v.Available(g, d) {
			n++
		}
	}
	return n
}
func (v *fakeView) InFlightTasks(g int) []taskgraph.TaskID {
	return append([]taskgraph.TaskID(nil), v.inflight[g]...)
}
func (v *fakeView) Rand() *rand.Rand       { return v.rng }
func (v *fakeView) Charge(ops int64)       { v.charged += ops }
func (v *fakeView) ChargeStatic(ops int64) { v.static += ops }

func TestReadyPickPrefersResident(t *testing.T) {
	inst := workload.Matmul2D(4)
	v := newFakeView(inst, 1)
	// Make inputs of task 7 (row 1, col 3: A[1], B[3]) resident.
	for _, d := range inst.Inputs(7) {
		v.resident[0][d] = true
	}
	queue := []taskgraph.TaskID{0, 3, 7, 9}
	if i := readyPick(v, 0, queue, 0, true); queue[i] != 7 {
		t.Fatalf("picked %d, want 7", queue[i])
	}
	// Arriving data also counts as present.
	v2 := newFakeView(inst, 1)
	for _, d := range inst.Inputs(9) {
		v2.arriving[0][d] = true
	}
	if i := readyPick(v2, 0, queue, 0, true); queue[i] != 9 {
		t.Fatalf("picked %d, want 9", queue[i])
	}
	if v.charged == 0 {
		t.Fatal("readyPick must charge its scan")
	}
}

func TestReadyPickWindowBounds(t *testing.T) {
	inst := workload.Matmul2D(4)
	v := newFakeView(inst, 1)
	for _, d := range inst.Inputs(9) {
		v.resident[0][d] = true
	}
	queue := []taskgraph.TaskID{0, 3, 7, 9}
	// Window 2 cannot see task 9 at index 3.
	if i := readyPick(v, 0, queue, 2, true); queue[i] == 9 {
		t.Fatal("window bound ignored")
	}
	if i := readyPick(v, 0, queue, -1, true); queue[i] != 9 {
		t.Fatal("negative window should scan everything")
	}
	if readyPick(v, 0, nil, 0, true) != -1 {
		t.Fatal("empty queue should return -1")
	}
}

func TestStealHalf(t *testing.T) {
	q := [][]taskgraph.TaskID{
		{},
		{1, 2, 3, 4, 5, 6},
		{7, 8},
	}
	if !stealHalf(q, 0) {
		t.Fatal("steal failed")
	}
	// Half of the richest (gpu 1), from the tail.
	if len(q[1]) != 3 || len(q[0]) != 3 {
		t.Fatalf("after steal: %v", q)
	}
	if q[0][0] != 4 || q[0][2] != 6 {
		t.Fatalf("stolen tasks %v, want tail {4,5,6}", q[0])
	}
	// Nothing left to steal from a single-task victim.
	q = [][]taskgraph.TaskID{{}, {9}}
	if stealHalf(q, 0) {
		t.Fatal("stole from a single-task queue")
	}
}

func TestDMDAAllocationBalances(t *testing.T) {
	inst := workload.Matmul2D(10)
	v := newFakeView(inst, 4)
	s := NewDMDAR(0)().(*DMDAR)
	s.Init(inst, v)
	for k := 0; k < 4; k++ {
		if got := len(s.queues[k]); got < 15 || got > 35 {
			t.Fatalf("gpu %d allocated %d of 100 tasks", k, got)
		}
	}
	if v.static == 0 {
		t.Fatal("DMDA allocation must charge static cost")
	}
}

func TestHFPPackagesRespectMemoryPhase1(t *testing.T) {
	// White-box: run Init on a single GPU and verify the final package
	// is the concatenation of memory-fitting sub-packages by checking
	// the queue covers all tasks exactly once.
	inst := workload.Matmul2D(8)
	v := newFakeView(inst, 2)
	s := NewMHFP(false, 0)().(*MHFP)
	s.Init(inst, v)
	seen := make(map[taskgraph.TaskID]bool)
	total := 0
	for k := range s.queues {
		for _, task := range s.queues[k] {
			if seen[task] {
				t.Fatalf("task %d in two queues", task)
			}
			seen[task] = true
			total++
		}
	}
	if total != inst.NumTasks() {
		t.Fatalf("%d of %d tasks packed", total, inst.NumTasks())
	}
	// Load balancing: queues within one task of each other is too
	// strict after affinity merging, but 2x fair share must hold.
	fair := inst.NumTasks() / 2
	for k := range s.queues {
		if len(s.queues[k]) > fair+fair/2 {
			t.Fatalf("gpu %d queue %d >> fair %d", k, len(s.queues[k]), fair)
		}
	}
}

func TestHFPChargesCostOnlyWhenAsked(t *testing.T) {
	inst := workload.Matmul2D(6)
	v := newFakeView(inst, 2)
	NewMHFP(false, 0)().Init(inst, v)
	if v.static != 0 {
		t.Fatal("mHFP no sched. time charged static cost")
	}
	v2 := newFakeView(inst, 2)
	NewMHFP(true, 0)().Init(inst, v2)
	if v2.static == 0 {
		t.Fatal("mHFP did not charge packing cost")
	}
}

func TestHMetisRChargesCostOnlyWhenAsked(t *testing.T) {
	inst := workload.Matmul2D(6)
	v := newFakeView(inst, 2)
	NewHMetisR(false, 0)().Init(inst, v)
	if v.static != 0 {
		t.Fatal("no part. time variant charged static cost")
	}
	v2 := newFakeView(inst, 2)
	NewHMetisR(true, 0)().Init(inst, v2)
	if v2.static == 0 {
		t.Fatal("hMETIS+R did not charge partitioning cost")
	}
}

func TestHMetisRPartitionCoversAllTasks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := workload.Random(20+rng.Intn(60), 8+rng.Intn(10), 3, seed)
		v := newFakeView(inst, 2+rng.Intn(3))
		s := NewHMetisR(false, 0)().(*HMetisR)
		s.Init(inst, v)
		seen := make(map[taskgraph.TaskID]bool)
		for k := range s.queues {
			for _, task := range s.queues[k] {
				if seen[task] {
					return false
				}
				seen[task] = true
			}
		}
		return len(seen) == inst.NumTasks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDARTSPoolBookkeeping(t *testing.T) {
	inst := workload.Matmul2D(4)
	v := newFakeView(inst, 2)
	s, pol := NewDARTSPair(DARTSOptions{LUF: true})()
	d := s.(*DARTS)
	d.Init(inst, v)
	if pol == nil {
		t.Fatal("LUF pair missing policy")
	}
	// First pop: nothing loaded, pool full, so the else branch takes a
	// random task and marks its inputs loaded.
	task, ok := d.PopTask(0)
	if !ok {
		t.Fatal("pop failed")
	}
	if d.inPool(task) {
		t.Fatal("popped task still in pool")
	}
	for _, in := range inst.Inputs(task) {
		if !d.loaded[0][in] {
			t.Fatalf("input %d not marked loaded", in)
		}
	}
	// Next pops on GPU 0 should find free tasks via the now-loaded data
	// (the row and column of the first task share data with others).
	task2, ok := d.PopTask(0)
	if !ok {
		t.Fatal("second pop failed")
	}
	if task2 == task {
		t.Fatal("task popped twice")
	}
	// The buffers track popped tasks until completion.
	if len(d.buffer[0]) != 2 {
		t.Fatalf("buffer = %v", d.buffer[0])
	}
	d.TaskDone(0, task)
	if len(d.buffer[0]) != 1 || d.buffer[0][0] != task2 {
		t.Fatalf("buffer after done = %v", d.buffer[0])
	}
}

func TestDARTSEvictionRevokesPlanned(t *testing.T) {
	inst := workload.Matmul2D(6)
	v := newFakeView(inst, 1)
	s, _ := NewDARTSPair(DARTSOptions{LUF: true})()
	d := s.(*DARTS)
	d.Init(inst, v)
	// Pop once (random seed task), then once more to trigger a planned
	// fill from a selected data.
	d.PopTask(0)
	d.PopTask(0)
	if len(d.planned[0]) == 0 {
		t.Skip("no planned tasks materialized for this seed")
	}
	planned := append([]taskgraph.TaskID(nil), d.planned[0]...)
	// Evicting a data used by planned tasks must revoke them to the pool.
	victim := inst.Inputs(planned[0])[0]
	before := len(d.poolSlice)
	d.DataEvicted(0, victim)
	if d.loaded[0][victim] {
		t.Fatal("evicted data still marked loaded")
	}
	revoked := 0
	for _, task := range planned {
		if d.inPool(task) {
			revoked++
		}
	}
	if revoked == 0 {
		t.Fatal("no planned task revoked")
	}
	if len(d.poolSlice) <= before {
		t.Fatal("pool did not grow after revocation")
	}
}

func TestDARTSPlainDoesNotRevoke(t *testing.T) {
	inst := workload.Matmul2D(6)
	v := newFakeView(inst, 1)
	s, pol := NewDARTSPair(DARTSOptions{})()
	if pol != nil {
		t.Fatal("plain DARTS should use the default LRU")
	}
	d := s.(*DARTS)
	d.Init(inst, v)
	d.PopTask(0)
	d.PopTask(0)
	if len(d.planned[0]) == 0 {
		t.Skip("no planned tasks for this seed")
	}
	planned := append([]taskgraph.TaskID(nil), d.planned[0]...)
	victim := inst.Inputs(planned[0])[0]
	d.DataEvicted(0, victim)
	for _, task := range planned {
		if d.inPool(task) {
			t.Fatal("plain DARTS revoked a planned task")
		}
	}
}

func TestLUFVictimSelection(t *testing.T) {
	inst := workload.Matmul2D(4) // data 0..3 = A rows, 4..7 = B cols
	v := newFakeView(inst, 1)
	s, polI := NewDARTSPair(DARTSOptions{LUF: true})()
	d := s.(*DARTS)
	pol := polI.(*LUF)
	d.Init(inst, v)
	// Build scheduler state by hand: buffer holds task 0 (A0,B0);
	// planned holds task 1 (A0,B1).
	d.buffer[0] = []taskgraph.TaskID{0}
	d.planned[0] = []taskgraph.TaskID{1}
	// Candidates: A0 (data 0, used by buffer), B1 (data 5, planned
	// only), B2 (data 6, unused).
	victim := pol.Victim(0, []taskgraph.DataID{0, 5, 6})
	if victim != 6 {
		t.Fatalf("victim = %d, want 6 (nb=0, np=0)", victim)
	}
	// Without an unused candidate, prefer the planned-only one over the
	// buffered one.
	victim = pol.Victim(0, []taskgraph.DataID{0, 5})
	if victim != 5 {
		t.Fatalf("victim = %d, want 5 (nb=0, np=1)", victim)
	}
	// All candidates used by the buffer: Belady on the buffer order.
	d.buffer[0] = []taskgraph.TaskID{0, 5}           // task 5 = row 1, col 1 (A1,B1)
	victim = pol.Victim(0, []taskgraph.DataID{0, 1}) // A0 used at 0, A1 at 1
	if victim != 1 {
		t.Fatalf("victim = %d, want 1 (A1 used furthest)", victim)
	}
}

func TestDARTSThresholdLimitsCandidates(t *testing.T) {
	inst := workload.Matmul2D(10)
	vFull := newFakeView(inst, 1)
	sFull, _ := NewDARTSPair(DARTSOptions{LUF: true})()
	dFull := sFull.(*DARTS)
	dFull.Init(inst, vFull)

	vThr := newFakeView(inst, 1)
	sThr, _ := NewDARTSPair(DARTSOptions{LUF: true, Threshold: 2})()
	dThr := sThr.(*DARTS)
	dThr.Init(inst, vThr)

	// Drain both; the threshold variant must still schedule every task.
	count := 0
	for {
		_, ok := dThr.PopTask(0)
		if !ok {
			break
		}
		count++
	}
	if count != inst.NumTasks() {
		t.Fatalf("threshold variant served %d of %d tasks", count, inst.NumTasks())
	}
}

func TestDARTSOPTIServesEverything(t *testing.T) {
	inst := workload.Cholesky(5)
	v := newFakeView(inst, 2)
	s, _ := NewDARTSPair(DARTSOptions{LUF: true, Opti: true, ThreeInputs: true})()
	d := s.(*DARTS)
	d.Init(inst, v)
	served := 0
	for gpu := 0; ; gpu = 1 - gpu {
		_, ok := d.PopTask(gpu)
		if !ok {
			if _, ok2 := d.PopTask(1 - gpu); !ok2 {
				break
			}
			served++
			continue
		}
		served++
	}
	if served != inst.NumTasks() {
		t.Fatalf("served %d of %d", served, inst.NumTasks())
	}
}

func TestStrategyNames(t *testing.T) {
	cases := map[string]DARTSOptions{
		"DARTS":                  {},
		"DARTS+LUF":              {LUF: true},
		"DARTS+LUF-3inputs":      {LUF: true, ThreeInputs: true},
		"DARTS+LUF+OPTI":         {LUF: true, Opti: true},
		"DARTS+LUF+OPTI-3inputs": {LUF: true, Opti: true, ThreeInputs: true},
		"DARTS+LUF+threshold":    {LUF: true, Threshold: 10},
	}
	for want, opts := range cases {
		if got := opts.name(); got != want {
			t.Errorf("name(%+v) = %q, want %q", opts, got, want)
		}
	}
}
