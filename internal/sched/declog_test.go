package sched

import (
	"strings"
	"testing"

	"memsched/internal/platform"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

// TestDecisionLogEvictionsMatchTrace runs DARTS+LUF under memory pressure
// with a recorder attached and asserts the logged LUF victims are exactly
// the evictions the engine performed, in order: every eviction flows
// through LUF.Victim, so the decision log and the trace must agree 1:1.
func TestDecisionLogEvictionsMatchTrace(t *testing.T) {
	inst := workload.Matmul2D(30)
	rec := &DecisionList{}
	s, pol := DARTSStrategy(DARTSOptions{LUF: true}).WithRecorder(rec).New()
	res, err := sim.Run(inst, sim.Config{
		Platform:    platform.V100(2),
		Scheduler:   s,
		Eviction:    pol,
		Seed:        1,
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions == 0 {
		t.Fatal("scenario exerts no memory pressure; pick a bigger instance")
	}
	type evict struct {
		gpu  int
		data taskgraph.DataID
	}
	var logged []evict
	selects := 0
	for _, d := range rec.Decisions {
		switch d.Kind {
		case DecisionEvict:
			logged = append(logged, evict{d.GPU, d.Data})
			if d.Candidates <= 0 {
				t.Fatalf("evict decision without candidates: %+v", d)
			}
		case DecisionSelectData:
			selects++
			if d.Candidates <= 0 || d.FreedTasks <= 0 || d.TasksPerByte <= 0 {
				t.Fatalf("select-data decision missing its why: %+v", d)
			}
		}
	}
	if selects == 0 {
		t.Fatal("no select-data decisions recorded")
	}
	var traced []evict
	for _, ev := range res.Trace {
		if ev.Kind == sim.TraceEvict {
			traced = append(traced, evict{ev.GPU, ev.Data})
		}
	}
	if len(logged) != len(traced) {
		t.Fatalf("%d logged evictions vs %d traced", len(logged), len(traced))
	}
	for i := range logged {
		if logged[i] != traced[i] {
			t.Fatalf("eviction %d: logged %+v, traced %+v", i, logged[i], traced[i])
		}
	}
}

// TestDecisionLogSteals drives a steal directly: a thief with an empty
// deque pops against a loaded victim, and each moved task is recorded.
func TestDecisionLogSteals(t *testing.T) {
	inst := workload.Matmul2D(4)
	v := newFakeView(inst, 2)
	rec := &DecisionList{}
	s := NewWorkStealing(0, 0)().(*WorkStealing)
	s.SetDecisionRecorder(rec)
	s.Init(inst, v)
	s.queues[0] = nil // GPU 0 starts empty; all 16 tasks sit on GPU 1
	s.queues[1] = []taskgraph.TaskID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	if _, ok := s.PopTask(0); !ok {
		t.Fatal("thief found nothing")
	}
	var stolen []taskgraph.TaskID
	for _, d := range rec.Decisions {
		if d.Kind != DecisionSteal {
			t.Fatalf("unexpected decision %+v", d)
		}
		if d.GPU != 0 || d.Victim != 1 {
			t.Fatalf("steal direction wrong: %+v", d)
		}
		stolen = append(stolen, d.Task)
	}
	if len(stolen) != 8 {
		t.Fatalf("recorded %d steals, want half of 16", len(stolen))
	}
}

// TestDecisionLogWriter checks the line-oriented recorder output.
func TestDecisionLogWriter(t *testing.T) {
	var b strings.Builder
	l := &DecisionLog{W: &b}
	l.Record(Decision{Kind: DecisionSelectData, GPU: 1, Data: 3, Candidates: 5, FreedTasks: 2, TasksPerByte: 1e-6})
	l.Record(Decision{Kind: DecisionEvict, GPU: 0, Data: 7, Candidates: 2, FutureUses: 1})
	l.Record(Decision{Kind: DecisionFallback, GPU: 0, Task: 9})
	l.Record(Decision{Kind: DecisionSteal, GPU: 1, Victim: 0, Task: 4})
	if l.N != 4 {
		t.Fatalf("N = %d", l.N)
	}
	out := b.String()
	for _, want := range []string{"select-data 3", "evict data 7", "fallback task 9", "steals task 4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("log output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 4 {
		t.Fatalf("%d lines, want 4", lines)
	}
}

// TestDARTSPopAllocs guards the nil-recorder hot path: attaching the
// observability hooks must not cost the undecorated scheduler any
// allocations (BenchmarkDARTSPop measured ~147 allocs/op for the full
// drain before the hooks landed). The budget covers Init plus the whole
// drain: the incremental ready1/missing/LUF-scratch arrays added ~17
// fixed Init allocations, so 180 leaves headroom for noise only — any
// per-pop allocation would blow past it immediately.
func TestDARTSPopAllocs(t *testing.T) {
	inst := workload.Matmul2D(30)
	pair := NewDARTSPair(DARTSOptions{LUF: true})
	allocs := testing.AllocsPerRun(5, func() {
		v := newFakeView(inst, 2)
		s, _ := pair()
		s.Init(inst, v)
		for {
			_, ok0 := s.PopTask(0)
			_, ok1 := s.PopTask(1)
			if !ok0 && !ok1 {
				break
			}
		}
	})
	if allocs > 180 {
		t.Fatalf("full DARTS drain costs %.0f allocs, budget 180", allocs)
	}
}
