package sched

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"memsched/internal/platform"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

func digestSample() []Decision {
	return []Decision{
		{Kind: DecisionSelectData, GPU: 0, Data: 5, Candidates: 4, FreedTasks: 3},
		{Kind: DecisionSelectData, GPU: 0, Data: 6, Candidates: 2, FreedTasks: 1},
		{Kind: DecisionFallback, GPU: 1, Task: 9},
		{Kind: DecisionEvict, GPU: 0, Data: 17, Candidates: 3, FutureUses: 2},
		{Kind: DecisionEvict, GPU: 0, Data: 17, Candidates: 2, FutureUses: 0},
		{Kind: DecisionEvict, GPU: 1, Data: 4, Candidates: 5, FutureUses: 0},
		{Kind: DecisionSteal, GPU: 1, Task: 7, Victim: 0},
	}
}

func TestDigestRecorderAccumulates(t *testing.T) {
	var r DigestRecorder
	for _, d := range digestSample() {
		r.Record(d)
	}
	d := r.Digest()
	if d.SelectData != 2 || d.Fallbacks != 1 || d.Evictions != 3 || d.Steals != 1 {
		t.Fatalf("counts: %+v", d)
	}
	if d.Total() != 7 {
		t.Fatalf("total = %d", d.Total())
	}
	if d.PrematureEvictions != 1 {
		t.Fatalf("premature = %d", d.PrematureEvictions)
	}
	if d.MeanFreedTasks != 2 { // (3+1)/2
		t.Fatalf("mean freed = %g", d.MeanFreedTasks)
	}
	want := []EvictionStat{{Data: 17, Count: 2, MaxFutureUses: 2}, {Data: 4, Count: 1}}
	if !reflect.DeepEqual(d.TopEvicted, want) {
		t.Fatalf("top evicted = %+v", d.TopEvicted)
	}
}

func TestReplayDigestMatchesLiveRecording(t *testing.T) {
	var r DigestRecorder
	for _, d := range digestSample() {
		r.Record(d)
	}
	live, replayed := r.Digest(), ReplayDigest(digestSample())
	if !reflect.DeepEqual(live, replayed) {
		t.Fatalf("replay diverged: %+v vs %+v", live, replayed)
	}
	// Digests serialize deterministically (the compare path diffs them
	// across captures).
	a, _ := json.Marshal(live)
	b, _ := json.Marshal(replayed)
	if string(a) != string(b) {
		t.Fatalf("serialization diverged: %s vs %s", a, b)
	}
}

func TestDigestLeaderboardBounded(t *testing.T) {
	var r DigestRecorder
	for i := 0; i < 3*maxTopEvicted; i++ {
		r.Record(Decision{Kind: DecisionEvict, Data: taskgraph.DataID(i), FutureUses: 0})
	}
	d := r.Digest()
	if len(d.TopEvicted) != maxTopEvicted {
		t.Fatalf("leaderboard length = %d", len(d.TopEvicted))
	}
	// Equal counts break ties by data id ascending.
	for i := 0; i < maxTopEvicted; i++ {
		if d.TopEvicted[i].Data != taskgraph.DataID(i) {
			t.Fatalf("tie-break order: %+v", d.TopEvicted)
		}
	}
}

// TestJoinDigestsCitesBothRuns pins the compare-mode contract: the
// explanation cites concrete decision-log evidence from each run.
func TestJoinDigestsCitesBothRuns(t *testing.T) {
	oldD := ReplayDigest([]Decision{
		{Kind: DecisionSelectData, Data: 5, FreedTasks: 3},
		{Kind: DecisionEvict, Data: 17, FutureUses: 0},
	})
	newD := ReplayDigest([]Decision{
		{Kind: DecisionSelectData, Data: 5, FreedTasks: 1},
		{Kind: DecisionEvict, Data: 17, FutureUses: 2},
		{Kind: DecisionEvict, Data: 17, FutureUses: 1},
		{Kind: DecisionEvict, Data: 17, FutureUses: 0},
		{Kind: DecisionFallback, Task: 3},
	})
	lines := JoinDigests(oldD, newD)
	joined := strings.Join(lines, "\n")
	for _, want := range []string{
		"old run:", "new run:", // totals cite both runs
		"evicted data 17 3×",               // the new run's churned victim
		"old run evicted it 1×",            // joined against the old run's record
		"premature evictions",              // future-use regression
		"0 in old run vs 2 in new run",     // cited from both
		"fallback task picks",              // fallback delta
		"select-data efficiency",           // mean freed tasks
		"3.00 tasks freed per chosen load", // old run's value
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in:\n%s", want, joined)
		}
	}
}

func TestJoinDigestsMissingSides(t *testing.T) {
	d := ReplayDigest(digestSample())
	if lines := JoinDigests(nil, nil); len(lines) != 1 || !strings.Contains(lines[0], "no decision digest") {
		t.Fatalf("both nil: %v", lines)
	}
	if lines := JoinDigests(nil, d); !strings.Contains(lines[0], "old capture has no decision digest") {
		t.Fatalf("old nil: %v", lines)
	}
	if lines := JoinDigests(d, nil); !strings.Contains(lines[0], "new capture has no decision digest") {
		t.Fatalf("new nil: %v", lines)
	}
}

// TestDigestFromRealRun attaches a DigestRecorder to a DARTS+LUF run via
// WithRecorder and checks the digest agrees with a full DecisionList
// replayed through ReplayDigest — the digest is a lossless summary of
// the decision stream it saw.
func TestDigestFromRealRun(t *testing.T) {
	var list DecisionList
	var rec DigestRecorder
	both := MultiRecorder{&list, &rec}

	s, pol := DARTSStrategy(DARTSOptions{LUF: true}).WithRecorder(both).New()
	res, err := sim.Run(workload.Matmul2D(30), sim.Config{
		Platform:  platform.V100(2),
		Scheduler: s,
		Eviction:  pol,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions == 0 {
		t.Fatal("scenario exerts no memory pressure; pick a bigger instance")
	}
	live := rec.Digest()
	if !reflect.DeepEqual(live, ReplayDigest(list.Decisions)) {
		t.Fatalf("digest diverges from replayed decision list")
	}
	if live.Evictions == 0 || len(live.TopEvicted) == 0 {
		t.Fatalf("constrained run recorded no evictions: %+v", live)
	}
}
