package sched

import (
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

// EagerBelady couples the EAGER task order with an oracle eviction policy
// applying Belady's rule to the shared queue: evict the resident data
// whose next use in the remaining task sequence is the furthest away.
// Belady's rule is optimal for a fixed task order (§III of the paper), so
// this pair is the best possible eviction behaviour for the EAGER order
// and anchors the eviction-policy ablation bench.
type EagerBelady struct {
	base
	inst  *taskgraph.Instance
	queue []taskgraph.TaskID
	next  int
}

// NewEagerBeladyPair returns a builder producing the EAGER scheduler and
// its Belady oracle policy for one run.
func NewEagerBeladyPair() func() (sim.Scheduler, sim.EvictionPolicy) {
	return func() (sim.Scheduler, sim.EvictionPolicy) {
		s := &EagerBelady{}
		return s, &beladyOracle{s: s}
	}
}

// Name returns "EAGER+Belady".
func (s *EagerBelady) Name() string { return "EAGER+Belady" }

// Init loads the shared queue in submission order.
func (s *EagerBelady) Init(inst *taskgraph.Instance, view sim.RuntimeView) {
	s.inst = inst
	s.queue = make([]taskgraph.TaskID, inst.NumTasks())
	for i := range s.queue {
		s.queue[i] = taskgraph.TaskID(i)
	}
	s.next = 0
}

// PopTask hands out the next queued task.
func (s *EagerBelady) PopTask(gpu int) (taskgraph.TaskID, bool) {
	if s.next >= len(s.queue) {
		return taskgraph.NoTask, false
	}
	t := s.queue[s.next]
	s.next++
	return t, true
}

// beladyOracle evicts the candidate whose next use in the paired
// scheduler's remaining sequence is furthest in the future.
type beladyOracle struct {
	s *EagerBelady
}

// Name returns "Belady".
func (p *beladyOracle) Name() string { return "Belady" }

// Init, Loaded, Used and Evicted are no-ops: the oracle reads the paired
// scheduler's queue directly.
func (p *beladyOracle) Init(inst *taskgraph.Instance, view sim.RuntimeView) {}

// Loaded is a no-op.
func (p *beladyOracle) Loaded(gpu int, d taskgraph.DataID) {}

// Used is a no-op.
func (p *beladyOracle) Used(gpu int, d taskgraph.DataID) {}

// Victim scans the remaining shared queue once and returns the candidate
// used the latest (or never).
func (p *beladyOracle) Victim(gpu int, candidates []taskgraph.DataID) taskgraph.DataID {
	const never = int(^uint(0) >> 1)
	nextUse := make(map[taskgraph.DataID]int, len(candidates))
	for _, d := range candidates {
		nextUse[d] = never
	}
	remaining := len(candidates)
	for i := p.s.next; i < len(p.s.queue) && remaining > 0; i++ {
		for _, d := range p.s.inst.Inputs(p.s.queue[i]) {
			if use, ok := nextUse[d]; ok && use == never {
				nextUse[d] = i
				remaining--
			}
		}
	}
	best := candidates[0]
	for _, d := range candidates[1:] {
		if nextUse[d] > nextUse[best] {
			best = d
		}
	}
	return best
}

// Evicted is a no-op.
func (p *beladyOracle) Evicted(gpu int, d taskgraph.DataID) {}

var (
	_ sim.Scheduler      = (*EagerBelady)(nil)
	_ sim.EvictionPolicy = (*beladyOracle)(nil)
)
