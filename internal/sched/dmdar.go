package sched

import (
	"time"

	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

// DMDAR implements StarPU's "Deque Model Data Aware with Ready reordering"
// scheduler (§IV-A, Algorithms 1 and 2). Tasks are allocated to GPUs in
// submission order, each to the GPU minimizing its expected completion
// time (transfer time of the inputs not yet expected on that GPU plus
// computation time, on top of the GPU's expected availability). At
// runtime, each GPU reorders its local queue with the Ready heuristic:
// process first the task requiring the fewest new data transfers.
type DMDAR struct {
	base
	readyWindow int
	queues      [][]taskgraph.TaskID
	view        sim.RuntimeView
}

// NewDMDAR returns a Factory for DMDAR. readyWindow bounds how many local
// queue entries Ready examines per decision; 0 selects DefaultReadyWindow,
// negative scans the whole queue.
func NewDMDAR(readyWindow int) Factory {
	if readyWindow == 0 {
		readyWindow = DefaultReadyWindow
	}
	return func() sim.Scheduler {
		return &DMDAR{readyWindow: readyWindow}
	}
}

// Name returns "DMDAR".
func (s *DMDAR) Name() string { return "DMDAR" }

// Init performs the DMDA allocation (Algorithm 1): for each task in
// submission order, estimate its completion time on every GPU from the
// predicted transfer time of the inputs not already counted as present
// there and from the kernel time, then allocate it to the earliest GPU.
func (s *DMDAR) Init(inst *taskgraph.Instance, view sim.RuntimeView) {
	s.view = view
	plat := view.Platform()
	k := plat.NumGPUs
	s.queues = make([][]taskgraph.TaskID, k)
	ready := make([]time.Duration, k)             // expected availability of each GPU
	inMem := make([]map[taskgraph.DataID]bool, k) // InMem(k) of Algorithm 1
	for i := 0; i < k; i++ {
		inMem[i] = make(map[taskgraph.DataID]bool)
	}
	var ops int64
	for _, t := range inst.Tasks() {
		best, bestC := 0, time.Duration(1<<62)
		for g := 0; g < k; g++ {
			var comm time.Duration
			for _, d := range t.Inputs {
				if !inMem[g][d] {
					comm += plat.TransferDuration(inst.Data(d).Size)
				}
			}
			c := ready[g] + comm + plat.TaskDurationOn(g, t.Flops)
			if c < bestC {
				best, bestC = g, c
			}
			ops += int64(len(t.Inputs)) + 1
		}
		s.queues[best] = append(s.queues[best], t.ID)
		ready[best] = bestC
		for _, d := range t.Inputs {
			inMem[best][d] = true
		}
	}
	// The DMDA allocation is a per-task-submission cost in StarPU, spread
	// over the submission loop; charge it as static cost.
	view.ChargeStatic(ops)
}

// PopTask applies Ready to the GPU's local queue.
func (s *DMDAR) PopTask(gpu int) (taskgraph.TaskID, bool) {
	i := readyPick(s.view, gpu, s.queues[gpu], s.readyWindow, false)
	if i < 0 {
		return taskgraph.NoTask, false
	}
	t := s.queues[gpu][i]
	s.queues[gpu] = removeAt(s.queues[gpu], i)
	return t, true
}

// GPUDropped redistributes the dead GPU's allocation to the survivors
// (DMDAR has no stealing, so without this its tasks would be stranded).
func (s *DMDAR) GPUDropped(gpu int, requeue []taskgraph.TaskID) {
	requeueToAlive(s.view, s.queues, gpu, requeue, nil)
}
