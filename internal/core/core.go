// Package core implements the formal model of §III of the paper: the
// Bi-Obj-Multi-GPU-Task-Scheduling problem. Given a schedule sigma (a task
// order per GPU), it derives the optimal eviction sets V(k,i) with
// Belady's rule, maintains the live sets L(k,i), checks the memory bound,
// and counts the loads objective. A brute-force solver for tiny instances
// witnesses the optimization landscape and anchors the heuristics' tests.
package core

import (
	"fmt"

	"memsched/internal/taskgraph"
)

// Schedule is a task order per GPU: Order[k] lists the tasks processed by
// GPU k, in order (sigma(k, i) = Order[k][i]).
type Schedule struct {
	// Order holds one task sequence per GPU.
	Order [][]taskgraph.TaskID
}

// NumGPUs returns the number of GPUs of the schedule.
func (s *Schedule) NumGPUs() int { return len(s.Order) }

// MaxTasksPerGPU returns max_k nb_k, the load-balancing objective
// (Objective 1 of the paper).
func (s *Schedule) MaxTasksPerGPU() int {
	m := 0
	for _, q := range s.Order {
		if len(q) > m {
			m = len(q)
		}
	}
	return m
}

// Validate checks that the schedule processes every task of inst exactly
// once.
func (s *Schedule) Validate(inst *taskgraph.Instance) error {
	seen := make([]bool, inst.NumTasks())
	count := 0
	for k, q := range s.Order {
		for _, t := range q {
			if t < 0 || int(t) >= inst.NumTasks() {
				return fmt.Errorf("core: gpu %d schedules unknown task %d", k, t)
			}
			if seen[t] {
				return fmt.Errorf("core: task %d scheduled twice", t)
			}
			seen[t] = true
			count++
		}
	}
	if count != inst.NumTasks() {
		return fmt.Errorf("core: %d of %d tasks scheduled", count, inst.NumTasks())
	}
	return nil
}

// Eval is the outcome of evaluating a schedule under an eviction rule.
type Eval struct {
	// LoadsPerGPU is #Loads_k for each GPU.
	LoadsPerGPU []int
	// Loads is the total number of load operations, Objective 2.
	Loads int
	// BytesLoaded is the loads objective weighted by data sizes.
	BytesLoaded int64
	// MaxTasksPerGPU is Objective 1.
	MaxTasksPerGPU int
}

// EvictionRule selects the offline eviction policy used by Evaluate.
type EvictionRule int

const (
	// Belady evicts the resident data whose next use on this GPU is the
	// furthest in the future, which is optimal for a fixed sigma
	// (Belady's rule, [15] in the paper).
	Belady EvictionRule = iota
	// LRUOffline evicts the least recently used resident data.
	LRUOffline
)

// Evaluate simulates the schedule on GPUs with memoryBytes of memory each,
// deriving eviction sets with the given rule, and returns the objective
// values. Data is loaded as late as possible, as in the paper's model: the
// inputs of sigma(k,i) missing from L(k,i-1) are loaded right before task
// i runs. It returns an error if some task's inputs cannot fit.
func Evaluate(inst *taskgraph.Instance, s *Schedule, memoryBytes int64, rule EvictionRule) (*Eval, error) {
	if err := s.Validate(inst); err != nil {
		return nil, err
	}
	ev := &Eval{
		LoadsPerGPU:    make([]int, s.NumGPUs()),
		MaxTasksPerGPU: s.MaxTasksPerGPU(),
	}
	for k, q := range s.Order {
		loads, bytes, err := evalGPU(inst, q, memoryBytes, rule)
		if err != nil {
			return nil, fmt.Errorf("gpu %d: %w", k, err)
		}
		ev.LoadsPerGPU[k] = loads
		ev.Loads += loads
		ev.BytesLoaded += bytes
	}
	return ev, nil
}

// evalGPU runs one GPU's sequence. For Belady it precomputes, for every
// position and data item, the next position using that data.
func evalGPU(inst *taskgraph.Instance, q []taskgraph.TaskID, memoryBytes int64, rule EvictionRule) (int, int64, error) {
	const never = int(^uint(0) >> 1)
	resident := make(map[taskgraph.DataID]int) // data -> priority stamp
	var residentBytes int64
	loads := 0
	var bytesLoaded int64

	// nextUse[d] at step i: the smallest j >= i with d input of q[j].
	// Maintained with per-data sorted position lists.
	positions := make(map[taskgraph.DataID][]int)
	for i, t := range q {
		for _, d := range inst.Inputs(t) {
			positions[d] = append(positions[d], i)
		}
	}
	cursor := make(map[taskgraph.DataID]int) // index into positions[d]
	nextUseAfter := func(d taskgraph.DataID, i int) int {
		pos := positions[d]
		c := cursor[d]
		for c < len(pos) && pos[c] < i {
			c++
		}
		cursor[d] = c
		if c == len(pos) {
			return never
		}
		return pos[c]
	}

	clock := 0
	for i, t := range q {
		inputs := inst.Inputs(t)
		var need int64
		for _, d := range inputs {
			if _, ok := resident[d]; !ok {
				need += inst.Data(d).Size
			}
		}
		// Evict until the missing inputs fit (stage 1 of the model).
		for residentBytes+need > memoryBytes {
			victim := taskgraph.NoData
			switch rule {
			case Belady:
				furthest := -1
				for d := range resident {
					if isInput(inputs, d) {
						continue // V(k,i) must not evict inputs of sigma(k,i)
					}
					nu := nextUseAfter(d, i)
					if nu > furthest || (nu == furthest && (victim == taskgraph.NoData || d < victim)) {
						furthest = nu
						victim = d
					}
				}
			case LRUOffline:
				oldest := never
				for d := range resident {
					if isInput(inputs, d) {
						continue
					}
					if resident[d] < oldest || (resident[d] == oldest && (victim == taskgraph.NoData || d < victim)) {
						oldest = resident[d]
						victim = d
					}
				}
			}
			if victim == taskgraph.NoData {
				return 0, 0, fmt.Errorf("core: inputs of task %d (%d bytes) cannot fit in %d bytes", t, need, memoryBytes)
			}
			residentBytes -= inst.Data(victim).Size
			delete(resident, victim)
		}
		// Load missing inputs (stage 2), then run the task (stage 3).
		for _, d := range inputs {
			if _, ok := resident[d]; !ok {
				resident[d] = clock
				residentBytes += inst.Data(d).Size
				loads++
				bytesLoaded += inst.Data(d).Size
			}
			clock++
			resident[d] = clock
		}
	}
	return loads, bytesLoaded, nil
}

func isInput(inputs []taskgraph.DataID, d taskgraph.DataID) bool {
	for _, in := range inputs {
		if in == d {
			return true
		}
	}
	return false
}
