package core

import (
	"fmt"

	"memsched/internal/taskgraph"
)

// BruteForceResult is the outcome of exhaustive search.
type BruteForceResult struct {
	// Loads is the minimum total number of loads over all schedules
	// respecting the task-count bound.
	Loads int
	// Schedule achieves Loads.
	Schedule *Schedule
}

// BruteForce exhaustively solves the Bi-Obj-Multi-GPU-Task-Scheduling
// decision problem (Definition 1): over every partition of the tasks onto
// gpus GPUs with at most maxTasksPerGPU tasks each and every processing
// order, it evaluates the loads objective with the optimal (Belady)
// eviction and returns the minimum. The problem is NP-complete
// (Theorem 1), so this is only usable for tiny instances; it panics above
// 9 tasks to prevent accidents.
func BruteForce(inst *taskgraph.Instance, gpus int, memoryBytes int64, maxTasksPerGPU int) (*BruteForceResult, error) {
	m := inst.NumTasks()
	if m > 9 {
		panic(fmt.Sprintf("core: BruteForce on %d tasks (max 9)", m))
	}
	if gpus < 1 {
		return nil, fmt.Errorf("core: %d gpus", gpus)
	}
	assign := make([]int, m)
	best := &BruteForceResult{Loads: -1}

	var enumerateAssign func(i int)
	var enumerateOrders func(k int, queues [][]taskgraph.TaskID)

	evalFull := func(queues [][]taskgraph.TaskID) {
		s := &Schedule{Order: queues}
		ev, err := Evaluate(inst, s, memoryBytes, Belady)
		if err != nil {
			return // infeasible (some task does not fit)
		}
		if best.Loads < 0 || ev.Loads < best.Loads {
			cp := make([][]taskgraph.TaskID, len(queues))
			for k := range queues {
				cp[k] = append([]taskgraph.TaskID(nil), queues[k]...)
			}
			best.Loads = ev.Loads
			best.Schedule = &Schedule{Order: cp}
		}
	}

	// enumerateOrders permutes the queue of GPU k in place, recursing to
	// the next GPU and finally evaluating.
	enumerateOrders = func(k int, queues [][]taskgraph.TaskID) {
		if k == len(queues) {
			evalFull(queues)
			return
		}
		q := queues[k]
		var permute func(i int)
		permute = func(i int) {
			if i == len(q) {
				enumerateOrders(k+1, queues)
				return
			}
			for j := i; j < len(q); j++ {
				q[i], q[j] = q[j], q[i]
				permute(i + 1)
				q[i], q[j] = q[j], q[i]
			}
		}
		permute(0)
	}

	enumerateAssign = func(i int) {
		if i == m {
			queues := make([][]taskgraph.TaskID, gpus)
			counts := make([]int, gpus)
			for t, g := range assign {
				counts[g]++
				if counts[g] > maxTasksPerGPU {
					return
				}
				queues[g] = append(queues[g], taskgraph.TaskID(t))
			}
			enumerateOrders(0, queues)
			return
		}
		for g := 0; g < gpus; g++ {
			assign[i] = g
			enumerateAssign(i + 1)
			// Symmetry breaking: task 0 always on GPU 0.
			if i == 0 {
				break
			}
		}
	}
	enumerateAssign(0)
	if best.Loads < 0 {
		return nil, fmt.Errorf("core: no feasible schedule within %d tasks per GPU and %d bytes", maxTasksPerGPU, memoryBytes)
	}
	return best, nil
}

// Fig1Example reproduces the instance of Figure 1 of the paper: nine
// tasks with 2D grid dependencies over six unit data items, and the
// schedule shown there (GPU1 runs T1,T2,T5,T4; GPU2 runs T3,T6,T9,T8,T7).
// With a memory bound of M=2 data items, that schedule performs 11 loads.
func Fig1Example() (*taskgraph.Instance, *Schedule) {
	b := taskgraph.NewBuilder("fig1")
	const unit = 100 // arbitrary uniform size
	var d [7]taskgraph.DataID
	for i := 1; i <= 6; i++ {
		d[i] = b.AddData(fmt.Sprintf("D%d", i), unit)
	}
	// Task T_{3r+c+1} at row r, column c reads column data D_{c+1} and
	// row data D_{4+r}.
	var tasks [10]taskgraph.TaskID
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			id := 3*r + c + 1
			tasks[id] = b.AddTask(fmt.Sprintf("T%d", id), 1e9, d[c+1], d[4+r])
		}
	}
	inst := b.Build()
	s := &Schedule{Order: [][]taskgraph.TaskID{
		{tasks[1], tasks[2], tasks[5], tasks[4]},
		{tasks[3], tasks[6], tasks[9], tasks[8], tasks[7]},
	}}
	return inst, s
}

// Fig1MemoryBytes is the memory bound of Figure 1 (M = 2 unit data).
const Fig1MemoryBytes = 200
