package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

func TestFig1Example(t *testing.T) {
	inst, s := Fig1Example()
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(inst, s, Fig1MemoryBytes, Belady)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Loads != 11 {
		t.Fatalf("Figure 1 schedule: %d loads, paper says 11", ev.Loads)
	}
	if ev.LoadsPerGPU[0] != 5 || ev.LoadsPerGPU[1] != 6 {
		t.Fatalf("per-GPU loads %v, want [5 6]", ev.LoadsPerGPU)
	}
	if ev.MaxTasksPerGPU != 5 {
		t.Fatalf("max nb_k = %d, want 5", ev.MaxTasksPerGPU)
	}
}

func TestEvaluateRejectsBadSchedules(t *testing.T) {
	inst, s := Fig1Example()
	// Duplicate a task.
	bad := &Schedule{Order: [][]taskgraph.TaskID{s.Order[0], s.Order[0]}}
	if _, err := Evaluate(inst, bad, Fig1MemoryBytes, Belady); err == nil {
		t.Fatal("expected error for duplicated tasks")
	}
	// Drop a task.
	bad = &Schedule{Order: [][]taskgraph.TaskID{s.Order[0]}}
	if _, err := Evaluate(inst, bad, Fig1MemoryBytes, Belady); err == nil {
		t.Fatal("expected error for missing tasks")
	}
	// Memory too small for a 2-input task.
	if _, err := Evaluate(inst, s, 100, Belady); err == nil {
		t.Fatal("expected error for memory below one task footprint")
	}
}

// TestBeladyOptimalOnFig1 verifies against brute force that no schedule
// of the Figure 1 instance on 2 GPUs with at most 5 tasks per GPU does
// fewer loads than the optimum, and that the figure's schedule (11 loads)
// is not optimal for free placement (a row-wise split achieves fewer).
func TestBeladyOptimalOnFig1(t *testing.T) {
	inst, _ := Fig1Example()
	best, err := BruteForce(inst, 2, Fig1MemoryBytes, 5)
	if err != nil {
		t.Fatal(err)
	}
	if best.Loads > 11 {
		t.Fatalf("brute force found %d loads, figure achieves 11", best.Loads)
	}
	ev, err := Evaluate(inst, best.Schedule, Fig1MemoryBytes, Belady)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Loads != best.Loads {
		t.Fatalf("re-evaluation mismatch: %d vs %d", ev.Loads, best.Loads)
	}
}

// TestBeladyNeverWorseThanLRU is the classical optimality property of
// Belady's rule, checked on random instances and schedules.
func TestBeladyNeverWorseThanLRU(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := workload.Random(12+rng.Intn(20), 6+rng.Intn(8), 3, seed)
		s := randomSchedule(inst, 1+rng.Intn(3), rng)
		mem := 3 * inst.MaxDataSize() * int64(inst.MaxInputs())
		bel, err := Evaluate(inst, s, mem, Belady)
		if err != nil {
			return true // infeasible memory; nothing to compare
		}
		lru, err := Evaluate(inst, s, mem, LRUOffline)
		if err != nil {
			return false
		}
		return bel.Loads <= lru.Loads
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestLoadsLowerBound: every GPU must load each distinct data its tasks
// read at least once, so total loads >= union sizes summed over GPUs.
func TestLoadsLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := workload.Random(10+rng.Intn(15), 5+rng.Intn(6), 2, seed)
		s := randomSchedule(inst, 2, rng)
		mem := 3 * inst.MaxDataSize() * int64(inst.MaxInputs())
		ev, err := Evaluate(inst, s, mem, Belady)
		if err != nil {
			return true
		}
		lower := 0
		for _, q := range s.Order {
			distinct := map[taskgraph.DataID]bool{}
			for _, task := range q {
				for _, d := range inst.Inputs(task) {
					distinct[d] = true
				}
			}
			lower += len(distinct)
		}
		return ev.Loads >= lower
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestUnlimitedMemoryLoadsEqualUnion: with memory holding everything,
// loads equal exactly the per-GPU distinct data counts.
func TestUnlimitedMemoryLoadsEqualUnion(t *testing.T) {
	inst := workload.Matmul2D(6)
	rng := rand.New(rand.NewSource(4))
	s := randomSchedule(inst, 2, rng)
	ev, err := Evaluate(inst, s, inst.WorkingSetBytes(), Belady)
	if err != nil {
		t.Fatal(err)
	}
	lower := 0
	for _, q := range s.Order {
		distinct := map[taskgraph.DataID]bool{}
		for _, task := range q {
			for _, d := range inst.Inputs(task) {
				distinct[d] = true
			}
		}
		lower += len(distinct)
	}
	if ev.Loads != lower {
		t.Fatalf("loads %d != distinct-per-GPU %d with unlimited memory", ev.Loads, lower)
	}
}

func randomSchedule(inst *taskgraph.Instance, gpus int, rng *rand.Rand) *Schedule {
	order := make([][]taskgraph.TaskID, gpus)
	perm := rng.Perm(inst.NumTasks())
	for i, p := range perm {
		k := i % gpus
		order[k] = append(order[k], taskgraph.TaskID(p))
	}
	return &Schedule{Order: order}
}

func TestBruteForceRespectsTaskBound(t *testing.T) {
	inst, _ := Fig1Example()
	res, err := BruteForce(inst, 2, Fig1MemoryBytes, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.MaxTasksPerGPU() > 5 {
		t.Fatalf("bound violated: %d", res.Schedule.MaxTasksPerGPU())
	}
	// Tighter balance bound still feasible but may cost more loads.
	res5, err := BruteForce(inst, 2, Fig1MemoryBytes, 5)
	if err != nil {
		t.Fatal(err)
	}
	resTight, err := BruteForce(inst, 2, Fig1MemoryBytes, 5-0)
	if err != nil {
		t.Fatal(err)
	}
	if resTight.Loads < res5.Loads {
		t.Fatalf("tighter bound cannot reduce loads: %d < %d", resTight.Loads, res5.Loads)
	}
}

// TestEvaluateHeterogeneousSizes: the model extends to data of different
// sizes (§III note); eviction must free enough bytes, possibly evicting
// several small items for one large.
func TestEvaluateHeterogeneousSizes(t *testing.T) {
	b := taskgraph.NewBuilder("hetero")
	small1 := b.AddData("s1", 100)
	small2 := b.AddData("s2", 100)
	big := b.AddData("big", 250)
	t0 := b.AddTask("t0", 1e9, small1, small2)
	t1 := b.AddTask("t1", 1e9, big)
	t2 := b.AddTask("t2", 1e9, small1)
	inst := b.Build()

	// Capacity 300: t0 loads both small (200 B). t1 needs 250 B: both
	// smalls must go. t2 reloads small1. Loads = 2 + 1 + 1 = 4.
	s := &Schedule{Order: [][]taskgraph.TaskID{{t0, t1, t2}}}
	ev, err := Evaluate(inst, s, 300, Belady)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Loads != 4 {
		t.Fatalf("loads = %d, want 4", ev.Loads)
	}
	if ev.BytesLoaded != 100+100+250+100 {
		t.Fatalf("bytes = %d", ev.BytesLoaded)
	}
	// Reordering t2 before t1 avoids the reload: 3 loads.
	s = &Schedule{Order: [][]taskgraph.TaskID{{t0, t2, t1}}}
	ev, err = Evaluate(inst, s, 300, Belady)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Loads != 3 {
		t.Fatalf("reordered loads = %d, want 3", ev.Loads)
	}
}

// TestBeladyEvictsFurthestUse pins the rule itself on a hand-built case.
func TestBeladyEvictsFurthestUse(t *testing.T) {
	b := taskgraph.NewBuilder("belady")
	const u = 100
	dx := b.AddData("x", u)
	dy := b.AddData("y", u)
	dz := b.AddData("z", u)
	// Order t0(x,y), t1(z), t2(x) with capacity for two items: loading z
	// at t1 forces an eviction. Belady must evict y (never used again)
	// and keep x for t2, giving exactly the three compulsory loads.
	t0 := b.AddTask("t0", 1e9, dx, dy)
	t1 := b.AddTask("t1", 1e9, dz)
	t2 := b.AddTask("t2", 1e9, dx)
	inst := b.Build()
	s := &Schedule{Order: [][]taskgraph.TaskID{{t0, t1, t2}}}
	bel, err := Evaluate(inst, s, 2*u, Belady)
	if err != nil {
		t.Fatal(err)
	}
	if bel.Loads != 3 {
		t.Fatalf("Belady loads = %d, want 3 (evicts y, never used again)", bel.Loads)
	}
}
