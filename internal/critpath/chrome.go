package critpath

import (
	"fmt"
	"io"

	"memsched/internal/platform"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

// tidCritPath is the timeline row of the attribution track in the
// highlighted export (GPU rows are 0..N, bus 1000, NVLink 2000+).
const tidCritPath = 3000

// categoryColor maps each blame category to a chrome://tracing reserved
// color so the attribution track (and the highlighted source spans)
// read at a glance: green compute, red transfers, dark-red reloads.
var categoryColor = [NumCategories]string{
	Compute: "good",
	PCI:     "bad",
	Peer:    "yellow",
	Reload:  "terrible",
	Sched:   "grey",
	Fault:   "black",
}

// WriteHighlightedChromeTrace exports the run's Chrome trace with the
// critical path made visible: a dedicated "critical path" track tiles
// [0, Makespan] with one colored span per attributed segment, and every
// task or transfer that appears on the path keeps the matching color on
// its own row. Open in chrome://tracing or ui.perfetto.dev.
func WriteHighlightedChromeTrace(w io.Writer, inst *taskgraph.Instance, plat platform.Platform, res *sim.Result, p *Path) error {
	critTask := map[taskgraph.TaskID]bool{}
	type gpuData struct {
		gpu int
		d   taskgraph.DataID
	}
	critData := map[gpuData]bool{}
	for _, s := range p.Segments {
		if s.Task != taskgraph.NoTask && (s.Category == Compute || s.Category == Fault) {
			critTask[s.Task] = true
		}
		if s.Data != taskgraph.NoData {
			critData[gpuData{s.GPU, s.Data}] = true
		}
	}
	opts := sim.ChromeTraceOptions{
		Color: func(ev sim.TraceEvent) string {
			switch ev.Kind {
			case sim.TraceEnd, sim.TraceTaskKill:
				if critTask[ev.Task] {
					return categoryColor[Compute]
				}
			case sim.TraceLoad, sim.TracePeerLoad:
				if critData[gpuData{ev.GPU, ev.Data}] {
					if a, ok := lastArrivalCategory(p, ev); ok {
						return categoryColor[a]
					}
					return categoryColor[PCI]
				}
			}
			return ""
		},
		Extra:      make([]sim.ChromeSpan, 0, len(p.Segments)),
		TrackNames: map[int]string{tidCritPath: "critical path"},
	}
	for _, s := range p.Segments {
		opts.Extra = append(opts.Extra, sim.ChromeSpan{
			Name:  fmt.Sprintf("%s %s", s.Category, segmentLabel(inst, s)),
			Start: int64(s.Start),
			End:   int64(s.End),
			TID:   tidCritPath,
			Cat:   "critpath",
			Cname: categoryColor[s.Category],
		})
	}
	return sim.WriteChromeTraceWith(w, inst, plat, res, opts)
}

// lastArrivalCategory finds the category of the path segment blaming
// this arrival's (gpu, data) pair closest below the event time, so the
// source transfer inherits the exact blame color (reload vs first
// load).
func lastArrivalCategory(p *Path, ev sim.TraceEvent) (Category, bool) {
	for i := len(p.Segments) - 1; i >= 0; i-- {
		s := p.Segments[i]
		if s.Data == ev.Data && s.GPU == ev.GPU && s.End <= ev.At+1 {
			return s.Category, true
		}
	}
	// Fall back to any segment blaming this pair (tail transfers end
	// after the event time recorded at arrival).
	for i := len(p.Segments) - 1; i >= 0; i-- {
		s := p.Segments[i]
		if s.Data == ev.Data && s.GPU == ev.GPU {
			return s.Category, true
		}
	}
	return 0, false
}
