package critpath

import (
	"fmt"
	"io"
	"time"

	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

// topN bounds the leaderboards embedded in a Summary: enough to name
// the culprits, small enough to live inside every telemetry row.
const topN = 3

// ms converts to milliseconds with the same truncation as the baseline
// store, so critpath numbers embedded in captures and BENCH files are
// byte-identical across layers.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// BlameEntry names one blamed task or data item in a Summary.
type BlameEntry struct {
	ID   int     `json:"id"`
	Name string  `json:"name"`
	MS   float64 `json:"ms"`
}

// Summary is the compact, JSON-stable form of a Path: category blame
// totals, counterfactual bounds, and the top blamed tasks and data
// items. It is embedded in telemetry captures, baseline cells, and
// memschedd job results.
type Summary struct {
	MakespanMS     float64      `json:"makespan_ms"`
	ComputeMS      float64      `json:"compute_ms"`
	PCIMS          float64      `json:"pci_ms"`
	PeerMS         float64      `json:"peer_ms"`
	ReloadMS       float64      `json:"reload_ms"`
	SchedMS        float64      `json:"sched_ms"`
	FaultMS        float64      `json:"fault_ms"`
	Segments       int          `json:"segments"`
	TransferFreeMS float64      `json:"transfer_free_ms"`
	EvictionFreeMS float64      `json:"eviction_free_ms"`
	ComputeBoundMS float64      `json:"compute_bound_ms"`
	TopTasks       []BlameEntry `json:"top_tasks,omitempty"`
	TopData        []BlameEntry `json:"top_data,omitempty"`
}

// Summarize reduces a Path to its Summary, resolving names from inst.
func Summarize(inst *taskgraph.Instance, p *Path) *Summary {
	s := &Summary{
		MakespanMS:     ms(p.Makespan),
		ComputeMS:      ms(p.Blame[Compute]),
		PCIMS:          ms(p.Blame[PCI]),
		PeerMS:         ms(p.Blame[Peer]),
		ReloadMS:       ms(p.Blame[Reload]),
		SchedMS:        ms(p.Blame[Sched]),
		FaultMS:        ms(p.Blame[Fault]),
		Segments:       len(p.Segments),
		TransferFreeMS: ms(p.TransferFree),
		EvictionFreeMS: ms(p.EvictionFree),
		ComputeBoundMS: ms(p.ComputeBound),
	}
	for i, e := range p.TaskBlame {
		if i == topN {
			break
		}
		s.TopTasks = append(s.TopTasks, BlameEntry{ID: int(e.Task), Name: inst.Task(e.Task).Name, MS: ms(e.Blame)})
	}
	for i, e := range p.DataBlame {
		if i == topN {
			break
		}
		s.TopData = append(s.TopData, BlameEntry{ID: int(e.Data), Name: inst.Data(e.Data).Name, MS: ms(e.Blame)})
	}
	return s
}

// pct renders d as a percentage of total, guarding the zero makespan.
func pct(d, total time.Duration) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(d) / float64(total)
}

// Report writes the human-readable attribution report: the blame
// table, counterfactual bounds, leaderboards, and the longest critical
// segments with names resolved against the instance.
func Report(w io.Writer, inst *taskgraph.Instance, res *sim.Result, p *Path) {
	fmt.Fprintf(w, "critical path — %s on %s (makespan %.3f ms, %d segments)\n",
		res.SchedulerName, res.InstanceName, ms(p.Makespan), len(p.Segments))
	fmt.Fprintf(w, "\nblame by category:\n")
	for c := 0; c < NumCategories; c++ {
		b := p.Blame[Category(c)]
		if b == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-8s %10.3f ms  %5.1f%%\n", Category(c), ms(b), pct(b, p.Makespan))
	}
	fmt.Fprintf(w, "\ncounterfactual lower bounds:\n")
	fmt.Fprintf(w, "  infinite bandwidth (transfer-free)  %10.3f ms  (-%.1f%%)\n",
		ms(p.TransferFree), pct(p.Makespan-p.TransferFree, p.Makespan))
	fmt.Fprintf(w, "  infinite memory    (eviction-free)  %10.3f ms  (-%.1f%%)\n",
		ms(p.EvictionFree), pct(p.Makespan-p.EvictionFree, p.Makespan))
	fmt.Fprintf(w, "  compute bound      (busiest GPU)    %10.3f ms\n", ms(p.ComputeBound))
	if len(p.TaskBlame) > 0 {
		fmt.Fprintf(w, "\ntop blamed tasks:\n")
		for i, e := range p.TaskBlame {
			if i == topN {
				break
			}
			fmt.Fprintf(w, "  %-16s %10.3f ms\n", inst.Task(e.Task).Name, ms(e.Blame))
		}
	}
	if len(p.DataBlame) > 0 {
		fmt.Fprintf(w, "\ntop blamed data:\n")
		for i, e := range p.DataBlame {
			if i == topN {
				break
			}
			fmt.Fprintf(w, "  %-16s %10.3f ms\n", inst.Data(e.Data).Name, ms(e.Blame))
		}
	}
	longest := make([]Segment, len(p.Segments))
	copy(longest, p.Segments)
	// Stable order: width descending, then start ascending.
	for i := 1; i < len(longest); i++ {
		for j := i; j > 0 && wider(longest[j], longest[j-1]); j-- {
			longest[j], longest[j-1] = longest[j-1], longest[j]
		}
	}
	fmt.Fprintf(w, "\nlongest critical segments:\n")
	for i, s := range longest {
		if i == 8 {
			break
		}
		fmt.Fprintf(w, "  [%10.3f, %10.3f] ms  %-8s gpu=%-2d %s\n",
			ms(s.Start), ms(s.End), s.Category, s.GPU, segmentLabel(inst, s))
	}
}

func wider(a, b Segment) bool {
	if a.Width() != b.Width() {
		return a.Width() > b.Width()
	}
	return a.Start < b.Start
}

func segmentLabel(inst *taskgraph.Instance, s Segment) string {
	switch {
	case s.Task != taskgraph.NoTask && s.Data != taskgraph.NoData:
		return fmt.Sprintf("task %s / data %s", inst.Task(s.Task).Name, inst.Data(s.Data).Name)
	case s.Task != taskgraph.NoTask:
		return "task " + inst.Task(s.Task).Name
	case s.Data != taskgraph.NoData:
		return "data " + inst.Data(s.Data).Name
	default:
		return "-"
	}
}
