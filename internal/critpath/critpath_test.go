package critpath_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"memsched/internal/critpath"
	"memsched/internal/expr"
	"memsched/internal/fault"
	"memsched/internal/platform"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

// analyzeCell runs one (figure, point, strategy) cell with trace
// recording and returns its instance, result and critical path.
func analyzeCell(t *testing.T, f *expr.Figure, pi, si int, plan *fault.Plan) (*taskgraph.Instance, *sim.Result, *critpath.Path) {
	t.Helper()
	inst := f.Points[pi].Build()
	res, err := expr.RunOneTraced(nil, inst, f.Strategies[si], f.Platform, f.NsPerOp, f.Seed, true, plan)
	if err != nil {
		t.Fatalf("%s %s: %v", f.ID, f.Strategies[si].Label, err)
	}
	p, err := critpath.Analyze(inst, res)
	if err != nil {
		t.Fatalf("%s %s: %v", f.ID, f.Strategies[si].Label, err)
	}
	return inst, res, p
}

// checkPath asserts the tiling invariant plus counterfactual sanity on
// an analyzed path.
func checkPath(t *testing.T, label string, res *sim.Result, p *critpath.Path) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if p.Makespan != res.Makespan {
		t.Fatalf("%s: path makespan %v != result makespan %v", label, p.Makespan, res.Makespan)
	}
	var sum time.Duration
	for _, s := range p.Segments {
		sum += s.Width()
	}
	if sum != res.Makespan {
		t.Fatalf("%s: segments sum to %v, want %v", label, sum, res.Makespan)
	}
	if p.TransferFree < 0 || p.TransferFree > p.Makespan {
		t.Fatalf("%s: transfer-free bound %v outside [0, %v]", label, p.TransferFree, p.Makespan)
	}
	if p.EvictionFree < p.TransferFree || p.EvictionFree > p.Makespan {
		t.Fatalf("%s: eviction-free bound %v outside [transfer-free %v, %v]",
			label, p.EvictionFree, p.TransferFree, p.Makespan)
	}
	if p.Blame[critpath.Compute] <= 0 {
		t.Fatalf("%s: no compute on the critical path", label)
	}
}

// TestTilingAcrossStrategies is the core property test: for every
// strategy of fig3 (1 GPU, scheduler cost model on) and fig5 (2 GPUs,
// NVLink-capable), the reconstructed critical path must exactly tile
// [0, Makespan].
func TestTilingAcrossStrategies(t *testing.T) {
	for _, id := range []string{"fig3", "fig5"} {
		f, err := expr.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		// Point 3 is large enough to force evictions and bus contention
		// without making the test slow.
		for si, strat := range f.Strategies {
			_, res, p := analyzeCell(t, f, 3, si, nil)
			checkPath(t, id+"/"+strat.Label, res, p)
		}
	}
}

// TestTilingFaultyRuns repeats the tiling property under each fault
// mechanism (dropout, transient retries, pressure, all three combined)
// for every fig5 strategy: killed tasks, re-executions, retry backoff
// and pressure evictions must all land in categorized segments that
// still tile exactly.
func TestTilingFaultyRuns(t *testing.T) {
	f, err := expr.ByID("fig5")
	if err != nil {
		t.Fatal(err)
	}
	plans := map[string]*fault.Plan{
		"dropout":   {Dropouts: []fault.Dropout{{GPU: 1, At: 3 * time.Millisecond}}},
		"transient": {Seed: 5, Transient: &fault.Transient{Rate: 0.2, MaxRetries: 4, Backoff: 20 * time.Microsecond}},
		"pressure":  {Pressures: []fault.Pressure{{GPU: 0, At: 2 * time.Millisecond, Duration: 5 * time.Millisecond, Bytes: 64 << 20}}},
		"combined": {
			Seed:      7,
			Dropouts:  []fault.Dropout{{GPU: 1, At: 3 * time.Millisecond}},
			Transient: &fault.Transient{Rate: 0.1, MaxRetries: 4, Backoff: 20 * time.Microsecond},
			Pressures: []fault.Pressure{{GPU: 0, At: 2 * time.Millisecond, Duration: 5 * time.Millisecond, Bytes: 64 << 20}},
		},
	}
	for name, plan := range plans {
		for si, strat := range f.Strategies {
			_, res, p := analyzeCell(t, f, 2, si, plan)
			checkPath(t, name+"/"+strat.Label, res, p)
			if name == "dropout" && res.Faults != nil && res.Faults.KilledTasks > 0 && p.Blame[critpath.Fault] == 0 {
				// A killed task forces a re-execution; unless the kill was
				// entirely off the critical chain the walk should surface
				// fault time. This is a soft expectation — only flag the
				// clear case where the last task itself was re-run.
				t.Logf("%s/%s: killed tasks but no fault blame (kill off-path)", name, strat.Label)
			}
		}
	}
}

// TestAnalyzeDeterministic pins byte-determinism: analyzing the same
// cell twice (fresh instance, fresh run) yields deep-equal paths and
// byte-identical summaries.
func TestAnalyzeDeterministic(t *testing.T) {
	f, err := expr.ByID("fig5")
	if err != nil {
		t.Fatal(err)
	}
	run := func() (*critpath.Path, []byte) {
		inst, _, p := analyzeCell(t, f, 2, 3, nil)
		buf, err := json.Marshal(critpath.Summarize(inst, p))
		if err != nil {
			t.Fatal(err)
		}
		return p, buf
	}
	p1, s1 := run()
	p2, s2 := run()
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("paths differ across identical runs")
	}
	if !bytes.Equal(s1, s2) {
		t.Fatalf("summaries differ:\n%s\n%s", s1, s2)
	}
}

// TestAnalyzeRequiresTrace rejects trace-less results.
func TestAnalyzeRequiresTrace(t *testing.T) {
	f, err := expr.ByID("fig3")
	if err != nil {
		t.Fatal(err)
	}
	inst := f.Points[0].Build()
	res, err := expr.RunOne(inst, f.Strategies[0], f.Platform, f.NsPerOp, f.Seed, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := critpath.Analyze(inst, res); err == nil {
		t.Fatal("expected error for trace-less result")
	}
}

// TestHighlightedChromeTrace renders the critical-path-highlighted
// export for a faulty 2-GPU run and checks the output is valid trace
// JSON containing the attribution track that tiles the makespan.
func TestHighlightedChromeTrace(t *testing.T) {
	inst := workload.Matmul2D(12)
	plat := platform.V100(2)
	f, err := expr.ByID("fig5")
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{
		Seed:      7,
		Dropouts:  []fault.Dropout{{GPU: 1, At: 3 * time.Millisecond}},
		Transient: &fault.Transient{Rate: 0.1, MaxRetries: 4, Backoff: 20 * time.Microsecond},
	}
	res, err := expr.RunOneTraced(nil, inst, f.Strategies[3], plat, 0, 1, true, plan)
	if err != nil {
		t.Fatal(err)
	}
	p, err := critpath.Analyze(inst, res)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := critpath.WriteHighlightedChromeTrace(&buf, inst, plat, res, p); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
			TID   int     `json:"tid"`
			Cat   string  `json:"cat"`
			Cname string  `json:"cname"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	var critSpans int
	var critDur float64
	var trackNamed bool
	for _, e := range out.TraceEvents {
		if e.Cat == "critpath" && e.Phase == "X" {
			critSpans++
			critDur += e.Dur
			if e.Cname == "" {
				t.Fatalf("uncolored critpath span %q", e.Name)
			}
		}
		if e.Phase == "M" && e.Name == "thread_name" {
			trackNamed = true
		}
	}
	if critSpans != len(p.Segments) {
		t.Fatalf("got %d critpath spans, want %d", critSpans, len(p.Segments))
	}
	if !trackNamed {
		t.Fatal("missing thread_name metadata for the critical-path track")
	}
	wantUS := float64(res.Makespan.Nanoseconds()) / 1e3
	if diff := critDur - wantUS; diff > 1 || diff < -1 {
		t.Fatalf("critpath track spans %.1f us, want makespan %.1f us", critDur, wantUS)
	}
}

// TestSummaryBlameSums checks the summary's category milliseconds
// reconcile with the path blame and the makespan (up to the microsecond
// truncation of the ms conversion).
func TestSummaryBlameSums(t *testing.T) {
	f, err := expr.ByID("fig3")
	if err != nil {
		t.Fatal(err)
	}
	inst, res, p := analyzeCell(t, f, 3, 2, nil)
	s := critpath.Summarize(inst, p)
	sum := s.ComputeMS + s.PCIMS + s.PeerMS + s.ReloadMS + s.SchedMS + s.FaultMS
	want := float64(res.Makespan.Microseconds()) / 1000
	if diff := sum - want; diff > 0.01 || diff < -0.01 {
		t.Fatalf("summary blame sums to %.4f ms, makespan %.4f ms", sum, want)
	}
	if s.Segments != len(p.Segments) {
		t.Fatalf("summary reports %d segments, path has %d", s.Segments, len(p.Segments))
	}
}
