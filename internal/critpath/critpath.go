// Package critpath reconstructs the blocking chain that determined the
// makespan of an executed schedule. It walks a recorded trace backwards
// from the last-completing task: each waiting interval along the chain
// is attributed to the resource that ended it — compute, a PCI
// transfer, an NVLink peer transfer, an eviction-induced reload,
// scheduler idle, or fault recovery — producing a path whose segments
// exactly tile [0, Makespan]. The same trace also yields counterfactual
// lower bounds (what the makespan would be with infinite bandwidth or
// infinite memory), so every cell can report how far a strategy sits
// from its transfer-free and eviction-free potential.
package critpath

import (
	"fmt"
	"sort"
	"time"

	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

// Category classifies one critical-path segment by the resource the
// schedule was waiting on during that interval.
type Category uint8

const (
	// Compute: a task on the critical chain was executing.
	Compute Category = iota
	// PCI: the chain waited on a host-bus transfer (first load of a
	// data item, or an output write-back draining after the last task).
	PCI
	// Peer: the chain waited on an NVLink device-to-device transfer.
	Peer
	// Reload: the chain waited on a transfer re-fetching data that an
	// earlier eviction threw away from the same GPU — time that exists
	// only because memory was scarce.
	Reload
	// Sched: the GPU sat idle with no attributable transfer in flight —
	// scheduler starvation, static scheduling cost, or window effects.
	Sched
	// Fault: time lost to fault handling — killed partial executions,
	// re-executions after a dropout, and transfers delayed by transient
	// retry backoff.
	Fault
	// NumCategories is the number of blame categories.
	NumCategories = int(Fault) + 1
)

var categoryNames = [NumCategories]string{"compute", "pci", "nvlink", "reload", "sched", "fault"}

func (c Category) String() string {
	if int(c) < NumCategories {
		return categoryNames[c]
	}
	return fmt.Sprintf("category(%d)", uint8(c))
}

// Segment is one interval of the critical path: (Start, End] was spent
// waiting on (or executing under) Category. Task and Data identify the
// blamed task and data item when attributable (NoTask/NoData otherwise).
type Segment struct {
	Start, End time.Duration
	Category   Category
	GPU        int
	Task       taskgraph.TaskID
	Data       taskgraph.DataID
}

// Width is the duration of the segment.
func (s Segment) Width() time.Duration { return s.End - s.Start }

// Path is the reconstructed critical path of one run.
type Path struct {
	// Makespan is the run's makespan; Segments tile [0, Makespan].
	Makespan time.Duration
	// Segments in ascending time order, contiguous, first starts at 0,
	// last ends at Makespan.
	Segments []Segment
	// Blame sums segment widths per category; the entries sum to
	// Makespan exactly.
	Blame [NumCategories]time.Duration
	// TaskBlame and DataBlame are the per-task / per-data leaderboards:
	// total critical-path time attributed to each task or data item,
	// sorted by blame descending (ties by id ascending). Only entries
	// with nonzero blame appear.
	TaskBlame []TaskBlameEntry
	DataBlame []DataBlameEntry
	// TransferFree is the counterfactual makespan with infinite
	// bandwidth: every transfer wait on the critical path vanishes.
	TransferFree time.Duration
	// EvictionFree is the counterfactual makespan with infinite GPU
	// memory: only the eviction-induced reload waits vanish.
	EvictionFree time.Duration
	// ComputeBound is the trace-independent floor: static scheduling
	// cost plus the busiest GPU's kernel time.
	ComputeBound time.Duration
}

// TaskBlameEntry is one row of the per-task blame leaderboard.
type TaskBlameEntry struct {
	Task  taskgraph.TaskID
	Blame time.Duration
}

// DataBlameEntry is one row of the per-data blame leaderboard.
type DataBlameEntry struct {
	Data  taskgraph.DataID
	Blame time.Duration
}

// maxSteps bounds the backward walk against malformed traces: each step
// consumes at least one span, arrival, or tail event.
func maxSteps(trace []sim.TraceEvent) int { return 2*len(trace) + 16 }

// Analyze reconstructs the critical path of res from its recorded
// trace. The instance is needed to resolve task inputs; res must have
// been produced with RecordTrace (Analyze fails on a trace-less result
// with nonzero makespan). The walk is deterministic: the same trace
// always yields byte-identical paths.
func Analyze(inst *taskgraph.Instance, res *sim.Result) (*Path, error) {
	p := &Path{Makespan: res.Makespan}
	if res.Makespan == 0 {
		p.finish(res)
		return p, nil
	}
	if len(res.Trace) == 0 {
		return nil, fmt.Errorf("critpath: result has no trace (run with RecordTrace)")
	}
	idx := sim.IndexTrace(res.Trace, res.NumGPUs)
	w := &walker{inst: inst, idx: idx, p: p, curLo: res.Makespan}

	// Tail: anything after the last trace event is drain the engine
	// spent on events that leave no trace record (stale wakes) —
	// scheduler time. Then the window (LastEnd, LastEvent] is tiled by
	// the tail events themselves (write-backs and straggler transfers
	// completing after the last task).
	w.emit(idx.LastEvent, Sched, -1, taskgraph.NoTask, taskgraph.NoData)
	for i := len(idx.Tail) - 1; i >= 0; i-- {
		ev := idx.Tail[i]
		lo := idx.LastEnd
		if i > 0 {
			lo = idx.Tail[i-1].At
		}
		cat, task, data := w.tailCategory(ev)
		w.emitAt(lo, ev.At, cat, ev.GPU, task, data)
	}
	w.emit(idx.LastEnd, Sched, -1, taskgraph.NoTask, taskgraph.NoData)

	if idx.LastEndGPU >= 0 {
		if err := w.walk(idx.LastEndGPU, idx.LastEndSpan, maxSteps(res.Trace)); err != nil {
			return nil, err
		}
	}
	// Anything left below the walk (no completed task at all) is
	// scheduler time by definition.
	w.emit(0, Sched, -1, taskgraph.NoTask, taskgraph.NoData)

	// Segments were produced in descending order; flip them.
	for i, j := 0, len(p.Segments)-1; i < j; i, j = i+1, j-1 {
		p.Segments[i], p.Segments[j] = p.Segments[j], p.Segments[i]
	}
	p.finish(res)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// walker carries the backward-walk state: curLo is the lower edge of
// the path built so far (segments are appended downward from Makespan).
type walker struct {
	inst  *taskgraph.Instance
	idx   *sim.TraceIndex
	p     *Path
	curLo time.Duration
}

// emit extends the path downward to lo with one segment of the given
// category. Calls with lo >= curLo are no-ops, so callers can state
// intent ("cover down to this boundary") without bookkeeping.
func (w *walker) emit(lo time.Duration, cat Category, gpu int, task taskgraph.TaskID, data taskgraph.DataID) {
	if lo < 0 {
		lo = 0
	}
	if lo >= w.curLo {
		return
	}
	w.p.Segments = append(w.p.Segments, Segment{Start: lo, End: w.curLo, Category: cat, GPU: gpu, Task: task, Data: data})
	w.curLo = lo
}

// emitAt is emit for callers that know the intended upper boundary:
// the segment is only emitted when hi matches the current lower edge
// (duplicate timestamps collapse into the latest-recorded event).
func (w *walker) emitAt(lo, hi time.Duration, cat Category, gpu int, task taskgraph.TaskID, data taskgraph.DataID) {
	if hi < w.curLo {
		return
	}
	w.emit(lo, cat, gpu, task, data)
}

// tailCategory classifies one post-completion trace event.
func (w *walker) tailCategory(ev sim.TraceEvent) (Category, taskgraph.TaskID, taskgraph.DataID) {
	switch ev.Kind {
	case sim.TraceWriteBack:
		return PCI, ev.Task, taskgraph.NoData
	case sim.TracePeerLoad:
		return Peer, taskgraph.NoTask, ev.Data
	case sim.TraceLoad:
		if a, ok := w.idx.LastArrival(ev.GPU, ev.Data, ev.At); ok && a.Reload {
			return Reload, taskgraph.NoTask, ev.Data
		}
		return PCI, taskgraph.NoTask, ev.Data
	case sim.TraceRetry, sim.TraceDropout, sim.TraceTaskKill, sim.TraceDataLost:
		return Fault, ev.Task, ev.Data
	default: // evictions, pressure edges: bookkeeping, not a blocking resource
		return Sched, taskgraph.NoTask, taskgraph.NoData
	}
}

// arrivalCategory classifies the wait that one arrival ended.
func arrivalCategory(a sim.Arrival) Category {
	switch {
	case a.Retried:
		return Fault
	case a.Reload:
		return Reload
	case a.Peer:
		return Peer
	default:
		return PCI
	}
}

// walk runs the backward chain from the span si on GPU g down to t=0.
func (w *walker) walk(g, si int, steps int) error {
	for {
		if steps--; steps < 0 {
			return fmt.Errorf("critpath: walk exceeded step bound (malformed trace?)")
		}
		sp := w.idx.Spans[g][si]
		// The execution interval itself: useful compute, or lost work
		// when the task was killed mid-flight.
		cat := Compute
		if sp.Killed {
			cat = Fault
		}
		w.emit(sp.Start, cat, g, sp.Task, taskgraph.NoData)
		if w.curLo == 0 {
			return nil
		}

		// Explain why sp did not start earlier on this GPU.
		var prevEnd time.Duration
		if si > 0 {
			prevEnd = w.idx.Spans[g][si-1].End
		}
		if prevEnd == sp.Start {
			// Back-to-back execution: chain straight into the previous
			// occupant of this GPU.
			si--
			continue
		}

		// A task that re-executes after a dropout chains through its
		// killed first attempt, possibly on another GPU.
		if ks, kg, ok := w.idx.KillOf(sp.Task, prevEnd, sp.Start); ok {
			w.emit(ks.End, Fault, kg, sp.Task, taskgraph.NoData)
			g, si = kg, w.idx.SpanBefore(kg, ks.End)
			if si < 0 {
				return fmt.Errorf("critpath: killed span of task %d not indexed", sp.Task)
			}
			continue
		}

		// Otherwise the gap (prevEnd, sp.Start] is tiled by the arrivals
		// of sp's inputs in that window: each sub-interval is blamed on
		// the transfer that ended it, and whatever remains above the
		// last arrival (residency achieved, task still not started) is
		// scheduler time.
		type cand struct {
			a sim.Arrival
			d taskgraph.DataID
		}
		var cands []cand
		for _, d := range w.inst.Inputs(sp.Task) {
			if a, ok := w.idx.LastArrival(g, d, sp.Start); ok && a.At > prevEnd {
				cands = append(cands, cand{a, d})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].a.At != cands[j].a.At {
				return cands[i].a.At < cands[j].a.At
			}
			return cands[i].d < cands[j].d
		})
		for i := len(cands) - 1; i >= 0; i-- {
			if i == len(cands)-1 {
				w.emit(cands[i].a.At, Sched, g, sp.Task, taskgraph.NoData)
			}
			lo := prevEnd
			if i > 0 {
				lo = cands[i-1].a.At
			}
			w.emitAt(lo, cands[i].a.At, arrivalCategory(cands[i].a), g, taskgraph.NoTask, cands[i].d)
		}
		w.emit(prevEnd, Sched, g, sp.Task, taskgraph.NoData)

		if si == 0 {
			// Bottom of this GPU's history; the final emit(0, Sched)
			// in Analyze covers any residue (there is none when
			// prevEnd == 0, the common case).
			return nil
		}
		si--
	}
}

// finish computes blame totals, leaderboards, and counterfactuals.
func (p *Path) finish(res *sim.Result) {
	taskBlame := map[taskgraph.TaskID]time.Duration{}
	dataBlame := map[taskgraph.DataID]time.Duration{}
	for _, s := range p.Segments {
		p.Blame[s.Category] += s.Width()
		if s.Task != taskgraph.NoTask {
			taskBlame[s.Task] += s.Width()
		}
		if s.Data != taskgraph.NoData {
			dataBlame[s.Data] += s.Width()
		}
	}
	p.TaskBlame = make([]TaskBlameEntry, 0, len(taskBlame))
	for t, b := range taskBlame {
		p.TaskBlame = append(p.TaskBlame, TaskBlameEntry{Task: t, Blame: b})
	}
	sort.Slice(p.TaskBlame, func(i, j int) bool {
		if p.TaskBlame[i].Blame != p.TaskBlame[j].Blame {
			return p.TaskBlame[i].Blame > p.TaskBlame[j].Blame
		}
		return p.TaskBlame[i].Task < p.TaskBlame[j].Task
	})
	p.DataBlame = make([]DataBlameEntry, 0, len(dataBlame))
	for d, b := range dataBlame {
		p.DataBlame = append(p.DataBlame, DataBlameEntry{Data: d, Blame: b})
	}
	sort.Slice(p.DataBlame, func(i, j int) bool {
		if p.DataBlame[i].Blame != p.DataBlame[j].Blame {
			return p.DataBlame[i].Blame > p.DataBlame[j].Blame
		}
		return p.DataBlame[i].Data < p.DataBlame[j].Data
	})

	p.TransferFree = p.Makespan - p.Blame[PCI] - p.Blame[Peer] - p.Blame[Reload]
	p.EvictionFree = p.Makespan - p.Blame[Reload]
	p.ComputeBound = res.StaticCost
	var busiest time.Duration
	for _, g := range res.GPU {
		if g.BusyTime > busiest {
			busiest = g.BusyTime
		}
	}
	p.ComputeBound += busiest
}

// Validate checks the tiling invariant: segments are contiguous,
// strictly positive in width, start at 0, end at Makespan, and the
// category blame totals sum back to the makespan. Any violation means
// the walk (or the trace) is broken.
func (p *Path) Validate() error {
	if p.Makespan == 0 {
		if len(p.Segments) != 0 {
			return fmt.Errorf("critpath: %d segments on a zero-makespan run", len(p.Segments))
		}
		return nil
	}
	if len(p.Segments) == 0 {
		return fmt.Errorf("critpath: no segments for makespan %v", p.Makespan)
	}
	if p.Segments[0].Start != 0 {
		return fmt.Errorf("critpath: first segment starts at %v, want 0", p.Segments[0].Start)
	}
	if last := p.Segments[len(p.Segments)-1].End; last != p.Makespan {
		return fmt.Errorf("critpath: last segment ends at %v, want makespan %v", last, p.Makespan)
	}
	for i, s := range p.Segments {
		if s.Width() <= 0 {
			return fmt.Errorf("critpath: segment %d has non-positive width %v", i, s.Width())
		}
		if i > 0 && p.Segments[i-1].End != s.Start {
			return fmt.Errorf("critpath: gap between segment %d (ends %v) and %d (starts %v)",
				i-1, p.Segments[i-1].End, i, s.Start)
		}
	}
	var sum time.Duration
	for _, b := range p.Blame {
		sum += b
	}
	if sum != p.Makespan {
		return fmt.Errorf("critpath: blame sums to %v, want makespan %v", sum, p.Makespan)
	}
	return nil
}
