package memsched

import (
	"memsched/internal/dag"
)

// DependencyGraph attaches precedence edges to an Instance, enabling the
// dependent-task extension (the paper's §VI future work). Build one with
// NewDependencyGraph and run it with WithDependencies.
type DependencyGraph = dag.Graph

// NewDependencyGraph returns an empty dependency graph over inst.
func NewDependencyGraph(inst *Instance) *DependencyGraph { return dag.NewGraph(inst) }

// CholeskyDAG builds the full tiled Cholesky decomposition as a dependent
// task graph: the kernels of Cholesky(n) plus the classical precedence
// edges (POTRF -> TRSM -> SYRK/GEMM chains).
func CholeskyDAG(n int) (*Instance, *DependencyGraph) { return dag.CholeskyDAG(n) }

// WithDependencies wraps a strategy so that tasks are released to the
// GPUs in dependency order: tasks the inner scheduler picks too early
// wait in a shared ready-stash and run (possibly on another GPU) once
// their predecessors complete.
func WithDependencies(g *DependencyGraph, strat Strategy) Strategy {
	return Strategy{
		Label: strat.Label + "+deps",
		New: func() (Scheduler, EvictionPolicy) {
			inner, pol := strat.New()
			return dag.NewGate(g, inner), pol
		},
	}
}
